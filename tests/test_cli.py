"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestFiguresCommand:
    def test_single_figure(self, capsys):
        assert main(["figures", "--fig", "aux", "-p", "d"]) == 0
        out = capsys.readouterr().out
        assert "interface overhead" in out

    def test_unknown_figure(self, capsys):
        assert main(["figures", "--fig", "42"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_fig3_runs(self, capsys):
        assert main(["figures", "--fig", "3"]) == 0
        assert "histograms" in capsys.readouterr().out


class TestTuneCommand:
    def test_fused_nb(self, capsys):
        assert main(["tune", "fused_nb", "-p", "d", "-n", "64"]) == 0
        out = capsys.readouterr().out
        assert "fused_nb" in out and "nb" in out

    def test_gemm_with_cache(self, capsys, tmp_path):
        cache = tmp_path / "t.json"
        assert main(["tune", "gemm", "-p", "s", "-n", "128", "--cache", str(cache)]) == 0
        assert cache.exists()
        data = json.loads(cache.read_text())
        assert any(k.startswith("gemm_tiling") for k in data)


class TestProfileCommand:
    def test_profile_with_trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        assert main([
            "profile", "-b", "200", "-n", "96", "--trace", str(trace)
        ]) == 0
        out = capsys.readouterr().out
        assert "Gflop/s" in out and "share_%" in out
        assert json.loads(trace.read_text())["traceEvents"]

    def test_profile_distribution_choice(self, capsys):
        assert main(["profile", "-b", "100", "-n", "64", "-d", "gaussian"]) == 0


class TestProfileCacheLine:
    def test_repeat_reports_cache_effectiveness(self, capsys):
        assert main(["profile", "-b", "100", "-n", "64", "--repeat", "3"]) == 0
        out = capsys.readouterr().out
        # The line is driven by the metrics registry the cache publishes to.
        assert "plan cache: 2 hits / 1 misses / 0 evictions over 3 batches" in out
        assert "67% hit rate" in out


class TestServeBenchCommand:
    def test_smoke_writes_report_and_passes_acceptance(self, capsys, tmp_path):
        report_path = tmp_path / "bench.json"
        assert main(["serve-bench", "--smoke", "-o", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "speedup vs per-request dispatch" in out
        report = json.loads(report_path.read_text())
        assert set(report["policies"]) == {
            "per-request", "fifo", "size-bucket", "greedy-window"
        }
        for snap in report["policies"].values():
            assert snap["served"] == report["config"]["requests"]
            assert snap["latency_sim_s"]["p99"] >= snap["latency_sim_s"]["p50"]
            assert snap["batch_size_histogram"]
        speedups = report["comparison"]["speedup_vs_per_request"]
        assert speedups["size-bucket"] >= 2.0
        assert speedups["greedy-window"] >= 2.0
        saved = report["comparison"]["padded_flops_saved_vs_fifo"]
        assert saved["size-bucket"] > 0 and saved["greedy-window"] > 0

    def test_smoke_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["serve-bench", "--smoke", "-o", str(a)]) == 0
        assert main(["serve-bench", "--smoke", "-o", str(b)]) == 0
        ja, jb = json.loads(a.read_text()), json.loads(b.read_text())
        for j in (ja, jb):  # wall-clock fields are the only nondeterminism
            for snap in j["policies"].values():
                snap["throughput"].pop("wall_s")
                snap["throughput"].pop("matrices_per_wall_s")
                snap.pop("latency_wall_s")
                snap["queue"].pop("mean_wait_wall_s")
        assert ja == jb

    def test_multi_device_smoke(self, capsys, tmp_path):
        assert main(["serve-bench", "--smoke", "--devices", "2"]) == 0


class TestFleetBenchCommand:
    def test_smoke_passes_the_chaos_gate(self, capsys, tmp_path):
        report_path = tmp_path / "fleet.json"
        assert main([
            "fleet-bench", "--smoke", "--faults", "seeded", "-o", str(report_path)
        ]) == 0
        out = capsys.readouterr().out
        assert "shed ratio" in out and "faults injected" in out
        report = json.loads(report_path.read_text())
        assert report["acceptance"]["pass"] is True
        assert set(report["runs"]) == {"unloaded", "overload", "baseline"}
        overload = report["runs"]["overload"]
        assert overload["faults"]["injected"] > 0
        assert overload["shed_ratio"] > 0.0
        assert all(run["hung"] == 0 for run in report["runs"].values())

    def test_smoke_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["fleet-bench", "--smoke", "-o", str(a)]) == 0
        assert main(["fleet-bench", "--smoke", "-o", str(b)]) == 0
        assert json.loads(a.read_text()) == json.loads(b.read_text())


class TestHeteroBenchCommand:
    def test_smoke_passes_acceptance_and_writes_report(self, capsys, tmp_path):
        report_path = tmp_path / "BENCH_pr7.json"
        assert main(["hetero-bench", "--smoke", "-o", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "homogeneous k40c scaling" in out
        assert "speedup vs best solo" in out
        report = json.loads(report_path.read_text())
        assert report["acceptance"]["failures"] == []
        assert report["scaling"]["size-stratified"]["8"]["speedup"] >= 3.5
        mixed = report["mixed"]
        assert mixed["elapsed_s"] < mixed["solos_s"][mixed["best_solo"]]
        assert sum(d["count"] for d in mixed["placement"]) == report["config"]["batch_count"]

    def test_smoke_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["hetero-bench", "--smoke", "-o", str(a)]) == 0
        assert main(["hetero-bench", "--smoke", "-o", str(b)]) == 0
        assert json.loads(a.read_text()) == json.loads(b.read_text())

    def test_members_spec_is_validated(self):
        from repro.errors import ArgumentError

        with pytest.raises(ArgumentError, match="unknown member"):
            main(["hetero-bench", "--smoke", "--members", "warp9"])


class TestEnergyCommand:
    def test_energy_bucket(self, capsys):
        assert main(["energy", "--low", "64", "--high", "128", "-b", "300"]) == 0
        out = capsys.readouterr().out
        assert "energy ratio" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
