"""Property-based invariants of the timing model.

These pin down the cost model's *sanity*, independent of calibration:
more work never runs faster, finer ETM never loses, the auto switch
never loses badly to either fixed approach, and padding never beats
the native variable-size path.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.batch import VBatch
from repro.core.driver import PotrfOptions, run_potrf_vbatched
from repro.core.fused import FusedDriver
from repro.device import Device
from repro.device.kernel import BlockWork, Kernel, LaunchConfig
from repro.types import Precision


class _WorkKernel(Kernel):
    name = "probe"

    def __init__(self, works, threads=128, etm="classic"):
        self.etm_mode = etm
        super().__init__()
        self._works = works
        self._threads = threads

    @property
    def precision(self):
        return Precision.D

    def launch_config(self):
        return LaunchConfig(self._threads)

    def block_works(self):
        return self._works


def _launch_time(works, etm="classic"):
    dev = Device(execute_numerics=False)
    dev.launch(_WorkKernel(works, etm=etm))
    return dev.synchronize()


class TestKernelCostInvariants:
    @given(
        flops=st.floats(0, 1e9),
        extra=st.floats(0, 1e9),
        nblocks=st.integers(1, 2000),
    )
    @settings(max_examples=50, deadline=None)
    def test_more_flops_never_faster(self, flops, extra, nblocks):
        base = _launch_time([BlockWork(flops, 0.0, count=nblocks)])
        more = _launch_time([BlockWork(flops + extra, 0.0, count=nblocks)])
        assert more >= base - 1e-15

    @given(
        bytes_=st.floats(0, 1e8),
        extra=st.floats(0, 1e8),
        nblocks=st.integers(1, 2000),
    )
    @settings(max_examples=50, deadline=None)
    def test_more_bytes_never_faster(self, bytes_, extra, nblocks):
        base = _launch_time([BlockWork(0.0, bytes_, count=nblocks)])
        more = _launch_time([BlockWork(0.0, bytes_ + extra, count=nblocks)])
        assert more >= base - 1e-15

    @given(nblocks=st.integers(1, 3000), more=st.integers(0, 3000))
    @settings(max_examples=50, deadline=None)
    def test_more_blocks_never_faster(self, nblocks, more):
        work = BlockWork(1e6, 1e4)
        base = _launch_time([BlockWork(1e6, 1e4, count=nblocks)])
        bigger = _launch_time([BlockWork(1e6, 1e4, count=nblocks + more)])
        assert bigger >= base - 1e-15

    @given(active=st.integers(1, 128))
    @settings(max_examples=40, deadline=None)
    def test_aggressive_never_slower_than_classic(self, active):
        works = [BlockWork(1e7, 1e5, active_threads=active, count=300)]
        t_classic = _launch_time(works, etm="classic")
        t_aggressive = _launch_time(works, etm="aggressive")
        assert t_aggressive <= t_classic + 1e-12

    @given(active=st.integers(0, 128))
    @settings(max_examples=40, deadline=None)
    def test_idle_threads_never_speed_a_block_up(self, active):
        full = _launch_time([BlockWork(1e7, 1e5, active_threads=128, count=100)])
        partial = _launch_time([BlockWork(1e7, 1e5, active_threads=max(active, 1), count=100)])
        assert partial >= full - 1e-12


class TestDriverInvariants:
    def _run(self, sizes, **opts):
        dev = Device(execute_numerics=False)
        b = VBatch.allocate(dev, sizes, "d")
        dev.reset_clock()
        run_potrf_vbatched(dev, b, int(max(sizes)), PotrfOptions(**opts))
        return dev.synchronize()

    @given(
        sizes=st.lists(st.integers(1, 256), min_size=1, max_size=60),
        extra=st.lists(st.integers(1, 256), min_size=1, max_size=30),
    )
    @settings(max_examples=25, deadline=None)
    def test_superset_batch_never_faster(self, sizes, extra):
        t_small = self._run(np.array(sizes))
        t_big = self._run(np.array(sizes + extra))
        assert t_big >= t_small * 0.95  # small slack: nb tables may shift

    @given(nmax=st.integers(16, 1024), count=st.integers(200, 500), seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_auto_close_to_best_fixed_choice(self, nmax, count, seed):
        """On uniform device-filling batches — the policy's tuning
        domain (paper §II: "we always assume that the batch size is
        large enough to fill up the resources") — the auto switch stays
        near the better fixed choice."""
        from repro.distributions import uniform_sizes

        sizes = uniform_sizes(count, nmax, seed=seed)
        t_auto = self._run(sizes, approach="auto")
        t_fused = self._run(sizes, approach="fused")
        t_sep = self._run(sizes, approach="separated")
        assert t_auto <= min(t_fused, t_sep) * 1.35 + 30e-6

    def test_known_policy_limitation_skewed_batch(self):
        """The paper's max-size crossover rule misfires when one large
        outlier rides with tiny matrices: the fused driver serializes
        the outlier's steps at single-block occupancy while the
        separated approach would use full gemm tiles.  This documents
        the §V open question ("how the variation in sizes might affect
        the crossover points") rather than hiding it.
        """
        sizes = np.array([1] * 49 + [300])  # max 300 < DP crossover 304
        t_auto = self._run(sizes, approach="auto")
        t_sep = self._run(sizes, approach="separated")
        assert t_auto > 1.5 * t_sep  # the rule genuinely loses here

    @given(sizes=st.lists(st.integers(8, 200), min_size=4, max_size=50))
    @settings(max_examples=20, deadline=None)
    def test_sorting_bounded_overhead(self, sizes):
        """Sorting may trade a little at adversarial batches but never
        collapses (its sub-launches pay only window bookkeeping)."""
        sizes = np.array(sizes)

        def run(sorting):
            dev = Device(execute_numerics=False)
            b = VBatch.allocate(dev, sizes, "d")
            dev.reset_clock()
            FusedDriver(dev, etm="aggressive", sorting=sorting).factorize(b, int(sizes.max()))
            return dev.synchronize()

        assert run(True) <= run(False) * 1.35

    @given(sizes=st.lists(st.integers(1, 200), min_size=4, max_size=60))
    @settings(max_examples=20, deadline=None)
    def test_padding_never_beats_vbatched(self, sizes):
        from repro.baselines.gpu import run_padding, run_vbatched

        sizes = np.array(sizes)
        dev = Device(execute_numerics=False)
        b = VBatch.allocate(dev, sizes, "d")
        dev.reset_clock()
        vb = run_vbatched(dev, b, int(sizes.max()))
        dev2 = Device(execute_numerics=False)
        pad = run_padding(dev2, sizes, int(sizes.max()), "d")
        assert vb.elapsed <= pad.elapsed * 1.05
