"""Property-based tests for the fleet's fair queuing and quotas.

Hypothesis drives the start-time fair queue (`_ClassQueue`) and the
router's quota gate through arbitrary tenant/weight/cost mixes, pinning
the invariants the example-based tests can only spot-check: nothing is
lost or reordered within a tenant, no backlogged tenant is starved, and
service split tracks the configured weights.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.errors import QuotaExceededError
from repro.serving import FleetRouter
from repro.serving.loadgen import VirtualClock
from repro.serving.router import Ticket, _ClassQueue, DEFAULT_SLOS


def _ticket(tid, tenant, cost):
    return Ticket(
        ticket_id=tid,
        matrix=np.zeros((2, 2)),
        rhs=None,
        tenant=tenant,
        slo=DEFAULT_SLOS["batch"],
        arrival=0.0,
        cost=cost,
    )


ARRIVALS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),            # tenant index
        st.floats(min_value=1e-3, max_value=10.0),        # cost
    ),
    min_size=1,
    max_size=60,
)
WEIGHTS = st.tuples(*[st.floats(min_value=0.1, max_value=16.0)] * 4)


class TestStartTimeFairQueue:
    @given(arrivals=ARRIVALS, weights=WEIGHTS)
    @settings(max_examples=100, deadline=None)
    def test_work_conserving_and_per_tenant_fifo(self, arrivals, weights):
        """Every push pops exactly once, and each tenant's own requests
        come out in the order they went in (SFQ reorders only *across*
        tenants)."""
        q = _ClassQueue()
        pushed = []
        for tid, (tenant_i, cost) in enumerate(arrivals):
            t = _ticket(tid, f"t{tenant_i}", cost)
            q.push(t, weights[tenant_i])
            pushed.append(t)
        popped = []
        while (t := q.pop(now=0.0)) is not None:
            popped.append(t)
        assert len(popped) == len(pushed)
        assert {t.ticket_id for t in popped} == {t.ticket_id for t in pushed}
        for tenant in {t.tenant for t in pushed}:
            got = [t.ticket_id for t in popped if t.tenant == tenant]
            assert got == sorted(got)

    @given(arrivals=ARRIVALS, weights=WEIGHTS)
    @settings(max_examples=100, deadline=None)
    def test_no_backlogged_tenant_is_starved(self, arrivals, weights):
        """Starvation freedom, stated in virtual time: with all pushes
        before any pop, service order is exactly (start_tag, ticket_id)
        order — a waiting ticket can only be bypassed by the (finite)
        set of lower-tagged work, never indefinitely.  Corollary: every
        tenant's first item carries tag 0, so each tenant is served
        within the first ``len(tenants)`` pops no matter the weights."""
        q = _ClassQueue()
        tenants = set()
        for tid, (tenant_i, cost) in enumerate(arrivals):
            t = _ticket(tid, f"t{tenant_i}", cost)
            q.push(t, weights[tenant_i])
            tenants.add(t.tenant)
        popped = []
        while (t := q.pop(now=0.0)) is not None:
            popped.append(t)
        tags = [(t.start_tag, t.ticket_id) for t in popped]
        assert tags == sorted(tags)
        assert {t.tenant for t in popped[: len(tenants)]} == tenants

    @given(
        n_a=st.integers(min_value=5, max_value=40),
        n_b=st.integers(min_value=5, max_value=40),
        w_a=st.floats(min_value=0.25, max_value=8.0),
        w_b=st.floats(min_value=0.25, max_value=8.0),
        cost=st.floats(min_value=0.01, max_value=5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_service_tracks_weights_for_backlogged_tenants(
        self, n_a, n_b, w_a, w_b, cost
    ):
        """With equal-cost items and both tenants backlogged, the pop
        counts over any prefix split within one item of the weight
        ratio (the classic SFQ fairness bound)."""
        q = _ClassQueue()
        tid = 0
        for _ in range(n_a):
            q.push(_ticket(tid, "a", cost), w_a)
            tid += 1
        for _ in range(n_b):
            q.push(_ticket(tid, "b", cost), w_b)
            tid += 1
        served = {"a": 0, "b": 0}
        remaining = {"a": n_a, "b": n_b}
        while (t := q.pop(now=0.0)) is not None:
            served[t.tenant] += 1
            remaining[t.tenant] -= 1
            if remaining["a"] > 0 and remaining["b"] > 0:
                # Normalized service lag never exceeds one item's worth
                # of virtual time per tenant.
                lag = abs(served["a"] / w_a - served["b"] / w_b)
                assert lag * 1.0 <= (1.0 / w_a + 1.0 / w_b) + 1e-9


class TestQuotaProperties:
    @given(
        quota=st.integers(min_value=0, max_value=12),
        offered=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_admitted_equals_min_of_offered_and_quota(self, quota, offered):
        """Without any service, a tenant's admissions are exactly
        ``min(offered, quota)`` and every excess raises the typed error."""
        clock = VirtualClock()
        router = FleetRouter(
            replica_count=1, max_batch=4, execute_numerics=False, clock=clock
        )
        router.set_tenant("t", quota=quota)
        admitted = rejected = 0
        for _ in range(offered):
            try:
                router.submit(np.zeros((8, 8)), tenant="t")
                admitted += 1
            except QuotaExceededError:
                rejected += 1
        assert admitted == min(offered, quota)
        assert rejected == offered - admitted
        router.shutdown(drain=False)

    @given(
        q_low=st.integers(min_value=0, max_value=10),
        extra=st.integers(min_value=0, max_value=10),
        offered=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=40, deadline=None)
    def test_quota_monotonicity(self, q_low, extra, offered):
        """Raising a quota never admits fewer requests (same offered
        stream, no service in between)."""
        def run(quota):
            clock = VirtualClock()
            router = FleetRouter(
                replica_count=1, max_batch=4, execute_numerics=False, clock=clock
            )
            router.set_tenant("t", quota=quota)
            count = 0
            for _ in range(offered):
                try:
                    router.submit(np.zeros((8, 8)), tenant="t")
                    count += 1
                except QuotaExceededError:
                    pass
            router.shutdown(drain=False)
            return count

        assert run(q_low) <= run(q_low + extra)
