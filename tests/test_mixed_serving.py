"""Mixed-operation serving: op-aware batching, dispatch and metrics."""

import numpy as np
import pytest

from repro.device import Device
from repro.errors import ArgumentError, ServingError
from repro.hostblas import build_q, make_spd
from repro.serving import BatchServer, CrossOpGreedyPolicy, GreedyWindowPolicy, POLICIES
from repro.serving.request import Request


def _rand(n, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    if np.issubdtype(dtype, np.complexfloating):
        a = a + 1j * rng.standard_normal((n, n))
    return np.ascontiguousarray(a.astype(dtype))


def _req(req_id, n, op="potrf", arrival=0.0, dtype=np.float64):
    return Request(
        req_id=req_id,
        op=op,
        matrix=np.zeros((n, n), dtype=dtype),
        arrival=arrival,
    )


class TestOpValidation:
    def test_unknown_op_rejected(self):
        server = BatchServer(Device())
        with pytest.raises(ArgumentError, match="bad op 'syevd'"):
            server.submit(np.eye(4), op="syevd")

    def test_gesvj_rejects_complex(self):
        server = BatchServer(Device())
        with pytest.raises(ArgumentError, match="real"):
            server.submit(np.eye(4, dtype=np.complex128), op="gesvj")

    def test_rhs_requirements_follow_the_op(self):
        server = BatchServer(Device())
        with pytest.raises(ArgumentError, match="right-hand side"):
            server.submit(np.eye(4), op="posv")  # solve op without rhs
        with pytest.raises(ArgumentError, match="right-hand side"):
            server.submit(np.eye(4), rhs=np.ones(4), op="geqrf")  # factor op with rhs
        with pytest.raises(ArgumentError, match="right-hand side"):
            server.submit(np.eye(4), op="gesv")

    def test_factor_op_maps_aliases_to_their_base(self):
        rhs = np.ones(4)
        assert _req(0, 4, op="potrf").factor_op == "potrf"
        assert Request(req_id=0, op="posv", matrix=np.eye(4), rhs=rhs).factor_op == "potrf"
        assert Request(req_id=0, op="gesv", matrix=np.eye(4), rhs=rhs).factor_op == "getrf"
        assert _req(0, 4, op="gesvj").factor_op == "gesvj"


class TestCrossOpPolicy:
    def test_registered_and_validated(self):
        assert POLICIES["cross-op"] is CrossOpGreedyPolicy
        assert isinstance(CrossOpGreedyPolicy(), GreedyWindowPolicy)
        with pytest.raises(ArgumentError):
            CrossOpGreedyPolicy(max_ratio=1.5, relaxed_ratio=1.2)

    def test_batches_are_single_op(self):
        pending = [_req(i, 32, op=op) for i, op in
                   enumerate(["geqrf", "potrf", "geqrf", "gesvj", "geqrf"])]
        picks = CrossOpGreedyPolicy().select(pending, urgent=0, max_batch=8)
        assert picks and all(pending[i].factor_op == "geqrf" for i in picks)
        assert sorted(picks) == [0, 2, 4]

    def test_aliases_batch_with_their_base_op(self):
        rhs = np.ones(32)
        pending = [
            _req(0, 32, op="potrf"),
            Request(req_id=1, op="posv", matrix=np.zeros((32, 32)), rhs=rhs),
            _req(2, 32, op="getrf"),
            Request(req_id=3, op="gesv", matrix=np.zeros((32, 32)), rhs=rhs),
        ]
        picks = CrossOpGreedyPolicy().select(pending, urgent=0, max_batch=8)
        assert sorted(picks) == [0, 1]
        picks = CrossOpGreedyPolicy().select(pending, urgent=2, max_batch=8)
        assert sorted(picks) == [2, 3]

    def test_majority_op_keeps_the_tight_window(self):
        # Backlog >= max_batch: the 1.5 window must exclude far sizes.
        pending = [_req(i, n, op="geqrf") for i, n in
                   enumerate([32, 32, 32, 32, 300])]
        picks = CrossOpGreedyPolicy().select(pending, urgent=0, max_batch=4)
        assert 4 not in picks and len(picks) == 4

    def test_minority_op_relaxes_the_window(self):
        # Backlog < max_batch: the relaxed 4.0 ratio pulls in the far
        # size a plain greedy window would strand as a padded singleton.
        pending = [_req(i, n, op="gesvj") for i, n in enumerate([32, 100])]
        tight = GreedyWindowPolicy().select(pending, urgent=0, max_batch=8)
        relaxed = CrossOpGreedyPolicy().select(pending, urgent=0, max_batch=8)
        assert tight == [0]
        assert sorted(relaxed) == [0, 1]

    def test_mixed_batch_rejected_at_validation(self):
        class BadPolicy(GreedyWindowPolicy):
            name = "bad"

            def select(self, pending, urgent, max_batch):
                return list(range(len(pending)))  # ignores op boundaries

        server = BatchServer(Device(execute_numerics=False), policy=BadPolicy())
        server.submit(np.zeros((8, 8)), op="geqrf")
        server.submit(np.zeros((8, 8)), op="potrf")
        with pytest.raises(ServingError, match="mixed operations"):
            server.pump(force=True)


class TestMixedDispatch:
    def test_each_op_served_correctly_end_to_end(self):
        server = BatchServer(Device(), policy="cross-op")
        spd = make_spd(12, seed=1)
        qr_in = _rand(10, seed=2)
        lu_in = _rand(11, seed=3)
        sv_in = _rand(9, seed=4)
        futs = {
            "potrf": server.submit(spd),
            "geqrf": server.submit(qr_in, op="geqrf"),
            "getrf": server.submit(lu_in, op="getrf"),
            "gesvj": server.submit(sv_in, op="gesvj"),
        }
        while server.pump(force=True):
            pass
        resps = {op: f.result(timeout=10.0) for op, f in futs.items()}
        assert all(r.info == 0 for r in resps.values())

        l = np.tril(resps["potrf"].factor)
        assert np.allclose(l @ l.T, spd, atol=1e-9)
        assert resps["potrf"].extras == {}

        f, taus = resps["geqrf"].factor, resps["geqrf"].extras["taus"]
        assert np.allclose(build_q(f, taus) @ np.triu(f), qr_in, atol=1e-9)

        lu = resps["getrf"].factor
        ipiv = resps["getrf"].extras["ipivs"]
        rebuilt = (np.tril(lu, -1) + np.eye(11)) @ np.triu(lu)
        for k in reversed(range(11)):
            p = int(ipiv[k]) - 1
            if p != k:
                rebuilt[[k, p]] = rebuilt[[p, k]]
        assert np.allclose(rebuilt, lu_in, atol=1e-9)

        sigma = resps["gesvj"].extras["singular_values"]
        vt = resps["gesvj"].extras["vt"]
        assert np.all(np.diff(sigma) <= 1e-12 * sigma[0])
        assert np.allclose(resps["gesvj"].factor @ (sigma[:, None] * vt),
                           sv_in, atol=1e-8)

    def test_gesv_rides_getrf_batches_and_solves(self):
        server = BatchServer(Device(), policy="cross-op")
        a = _rand(8, seed=7)
        b = np.arange(8, dtype=np.float64)
        fut_solve = server.submit(a, rhs=b, op="gesv")
        fut_factor = server.submit(_rand(8, seed=8), op="getrf")
        while server.pump(force=True):
            pass
        solve, factor = fut_solve.result(timeout=10.0), fut_factor.result(timeout=10.0)
        assert solve.batch_id == factor.batch_id  # one getrf launch
        assert solve.op == "gesv"
        assert np.allclose(a @ solve.solution, b, atol=1e-9)
        assert "ipivs" in solve.extras

    def test_posv_still_rides_potrf_batches(self):
        server = BatchServer(Device(), policy="cross-op")
        a = make_spd(8, seed=9)
        b = np.ones(8)
        fut_solve = server.submit(a, rhs=b)
        fut_factor = server.submit(make_spd(8, seed=10))
        while server.pump(force=True):
            pass
        solve, factor = fut_solve.result(timeout=10.0), fut_factor.result(timeout=10.0)
        assert solve.batch_id == factor.batch_id
        assert solve.op == "posv" and factor.op == "potrf"
        assert np.allclose(a @ solve.solution, b, atol=1e-8)

    def test_extras_are_isolated_copies(self):
        """Cached plans re-fill the same output storage on the next
        launch, so responses must carry private copies."""
        server = BatchServer(Device(), policy="cross-op")
        a1, a2 = _rand(6, seed=11), _rand(6, seed=12)
        f1 = server.submit(a1, op="geqrf")
        while server.pump(force=True):
            pass
        taus_first = f1.result(timeout=10.0).extras["taus"].copy()
        f2 = server.submit(a2, op="geqrf")
        while server.pump(force=True):
            pass
        f2.result(timeout=10.0)
        assert np.array_equal(f1.result().extras["taus"], taus_first)


class TestPerOpMetrics:
    def test_snapshot_breaks_batches_down_by_op(self):
        server = BatchServer(Device(execute_numerics=False), policy="cross-op")
        for n, op in [(16, "geqrf"), (20, "geqrf"), (16, "gesvj"), (12, "potrf")]:
            server.submit(np.zeros((n, n)), op=op)
        while server.pump(force=True):
            pass
        snap = server.metrics.snapshot()
        ops = snap["ops"]
        assert set(ops) == {"geqrf", "gesvj", "potrf"}
        assert ops["geqrf"]["matrices"] == 2
        assert ops["gesvj"]["batches"] == 1
        for row in ops.values():
            assert 0.0 < row["efficiency"] <= 1.0
            assert row["padded_flops"] >= row["useful_flops"]
        total = sum(r["useful_flops"] for r in ops.values())
        assert total == pytest.approx(snap["batching"]["useful_flops"])

    def test_op_counters_exported_with_labels(self):
        server = BatchServer(Device(execute_numerics=False), policy="cross-op")
        server.submit(np.zeros((16, 16)), op="getrf")
        while server.pump(force=True):
            pass
        rendered = server.metrics.registry.expose()
        assert 'serving_op_batches_total{op="getrf"} 1' in rendered
        assert 'serving_op_flops_total{op="getrf",kind="useful"}' in rendered
        assert 'serving_op_sim_busy_seconds_total{op="getrf"}' in rendered

    def test_alias_requests_account_under_the_factor_op(self):
        server = BatchServer(Device(), policy="cross-op")
        a = make_spd(8, seed=2)
        server.submit(a, rhs=np.ones(8))  # posv
        while server.pump(force=True):
            pass
        ops = server.metrics.snapshot()["ops"]
        assert list(ops) == ["potrf"]
