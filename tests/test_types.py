"""Tests for precision metadata (repro.types)."""

import numpy as np
import pytest

from repro.types import Precision, precision_info


class TestPrecisionEnum:
    def test_four_lapack_precisions_exist(self):
        assert {p.value for p in Precision} == {"s", "d", "c", "z"}

    @pytest.mark.parametrize("letter", ["s", "d", "c", "z"])
    def test_constructible_from_letter(self, letter):
        assert Precision(letter).value == letter

    def test_is_complex(self):
        assert not Precision.S.is_complex
        assert not Precision.D.is_complex
        assert Precision.C.is_complex
        assert Precision.Z.is_complex

    def test_is_double(self):
        assert Precision.D.is_double and Precision.Z.is_double
        assert not Precision.S.is_double and not Precision.C.is_double

    @pytest.mark.parametrize(
        "dtype,expected",
        [
            (np.float32, Precision.S),
            (np.float64, Precision.D),
            (np.complex64, Precision.C),
            (np.complex128, Precision.Z),
        ],
    )
    def test_from_dtype(self, dtype, expected):
        assert Precision.from_dtype(dtype) is expected
        assert Precision.from_dtype(np.dtype(dtype)) is expected

    @pytest.mark.parametrize("bad", [np.int32, np.int64, np.float16, np.bool_])
    def test_from_dtype_rejects_unsupported(self, bad):
        with pytest.raises(TypeError, match="unsupported dtype"):
            Precision.from_dtype(bad)


class TestPrecisionInfo:
    @pytest.mark.parametrize(
        "prec,nbytes,weight,fp64",
        [
            ("s", 4, 1, False),
            ("d", 8, 1, True),
            ("c", 8, 4, False),
            ("z", 16, 4, True),
        ],
    )
    def test_static_facts(self, prec, nbytes, weight, fp64):
        info = precision_info(prec)
        assert info.bytes_per_element == nbytes
        assert info.flop_weight == weight
        assert info.uses_fp64_units is fp64
        assert info.dtype.itemsize == nbytes
        assert info.name == prec

    def test_accepts_enum_and_string(self):
        assert precision_info(Precision.D) is precision_info("d")

    def test_info_is_frozen(self):
        info = precision_info("d")
        with pytest.raises(AttributeError):
            info.flop_weight = 2
