"""Additional figure-harness checks: seeds, precisions, note integrity."""

import pytest

from repro.bench.figures import (
    fig5_fused_variants,
    fig7_crossover,
    fig8_overall,
)


class TestSeedsAndDeterminism:
    def test_same_seed_reproduces_exactly(self):
        a = fig5_fused_variants("d", nmax_values=(64,), batch_count=200, seed=3)
        b = fig5_fused_variants("d", nmax_values=(64,), batch_count=200, seed=3)
        for sa, sb in zip(a.series, b.series):
            assert sa.values == sb.values

    def test_different_seed_changes_sample_not_shape(self):
        a = fig5_fused_variants("d", nmax_values=(128,), batch_count=300, seed=1)
        b = fig5_fused_variants("d", nmax_values=(128,), batch_count=300, seed=2)
        va = a.get("etm-aggressive+sorting").values[0]
        vb = b.get("etm-aggressive+sorting").values[0]
        assert va != vb
        assert abs(va - vb) / va < 0.25  # same regime, different draw


class TestFigureNotes:
    def test_fig7_notes_consistent_with_series(self):
        fig = fig7_crossover("d", nmax_values=(256, 1024), batch_count=150)
        assert fig.notes["configured_crossover"] <= fig.notes["fused_feasible_max"]

    def test_fig8_speedup_notes_match_series(self):
        fig = fig8_overall("d", nmax_values=(512,), batch_count=200)
        vb = fig.get("magma-vbatched").values[0]
        best = max(
            fig.get("cpu-1core-dynamic").values[0],
            fig.get("cpu-1core-static").values[0],
            fig.get("cpu-mkl-mt").values[0],
        )
        assert fig.notes["speedup_vs_best_competitor_min"] == pytest.approx(vb / best)
        assert fig.notes["speedup_vs_best_competitor_max"] == pytest.approx(vb / best)


class TestComplexPrecisionFigures:
    @pytest.mark.parametrize("prec", ["c", "z"])
    def test_fused_variants_run_in_complex(self, prec):
        fig = fig5_fused_variants(prec, nmax_values=(64, 128), batch_count=200)
        for s in fig.series:
            assert all(v > 0 for v in s.values)
