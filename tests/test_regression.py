"""Tests for figure-snapshot regression tooling, plus live snapshots.

The live tests pin the current calibration's headline numbers: if a
cost-model change moves any figure by more than the tolerance, these
fail and the change has to be re-justified (and the snapshot updated
deliberately via tools/update_snapshots.py).
"""

import math
from pathlib import Path

import pytest

from repro.bench import FigureResult
from repro.bench.figures import fig3_distributions, fig7_crossover
from repro.bench.regression import (
    compare_to_snapshot,
    load_snapshot,
    save_snapshot,
)

SNAPSHOT_DIR = Path(__file__).resolve().parent / "snapshots"


def demo_figure(values_a=(1.0, 2.0), values_b=(3.0, float("nan"))):
    fig = FigureResult("Fig T", "test", "x", [10, 20])
    fig.add("a", list(values_a))
    fig.add("b", list(values_b))
    fig.notes["k"] = 1.5
    return fig


class TestSnapshotRoundtrip:
    def test_save_load(self, tmp_path):
        fig = demo_figure()
        path = save_snapshot(fig, tmp_path / "snap.json")
        back = load_snapshot(path)
        assert back.figure == "Fig T"
        assert back.get("a").values == [1.0, 2.0]
        assert math.isnan(back.get("b").values[1])
        assert back.notes["k"] == 1.5

    def test_compare_identical_passes(self, tmp_path):
        fig = demo_figure()
        save_snapshot(fig, tmp_path / "s.json")
        drifts = compare_to_snapshot(demo_figure(), load_snapshot(tmp_path / "s.json"))
        assert all(d.max_rel_drift == 0.0 for d in drifts)

    def test_small_drift_within_tolerance(self, tmp_path):
        save_snapshot(demo_figure(), tmp_path / "s.json")
        drifted = demo_figure(values_a=(1.02, 2.0))
        drifts = compare_to_snapshot(drifted, load_snapshot(tmp_path / "s.json"), rel_tol=0.05)
        assert max(d.max_rel_drift for d in drifts) == pytest.approx(0.02)

    def test_large_drift_fails(self, tmp_path):
        save_snapshot(demo_figure(), tmp_path / "s.json")
        drifted = demo_figure(values_a=(2.0, 2.0))
        with pytest.raises(AssertionError, match="drifted 100.0%"):
            compare_to_snapshot(drifted, load_snapshot(tmp_path / "s.json"))

    def test_nan_placement_change_fails(self, tmp_path):
        save_snapshot(demo_figure(), tmp_path / "s.json")
        drifted = demo_figure(values_b=(3.0, 3.0))
        with pytest.raises(AssertionError, match="NaN placement"):
            compare_to_snapshot(drifted, load_snapshot(tmp_path / "s.json"))

    def test_missing_series_fails(self, tmp_path):
        save_snapshot(demo_figure(), tmp_path / "s.json")
        partial = FigureResult("Fig T", "test", "x", [10, 20])
        partial.add("a", [1.0, 2.0])
        with pytest.raises(AssertionError, match="disappeared"):
            compare_to_snapshot(partial, load_snapshot(tmp_path / "s.json"))

    def test_x_axis_change_fails(self, tmp_path):
        save_snapshot(demo_figure(), tmp_path / "s.json")
        other = FigureResult("Fig T", "test", "x", [10, 30])
        other.add("a", [1.0, 2.0])
        other.add("b", [3.0, 4.0])
        with pytest.raises(AssertionError, match="x-axis changed"):
            compare_to_snapshot(other, load_snapshot(tmp_path / "s.json"))


class TestLiveSnapshot:
    """Pin a real figure against a committed snapshot."""

    ARGS = dict(precision="d", nmax_values=(256, 512, 1024), batch_count=300)
    PATH = SNAPSHOT_DIR / "fig7_d_reduced.json"

    def test_fig7_matches_committed_snapshot(self):
        fig = fig7_crossover(**self.ARGS)
        if not self.PATH.exists():
            save_snapshot(fig, self.PATH)  # first run records the baseline
        drifts = compare_to_snapshot(fig, load_snapshot(self.PATH), rel_tol=0.02)
        assert drifts  # every stored series was checked

    def test_fig3_matches_committed_snapshot(self):
        fig = fig3_distributions(batch_count=400, max_size=256, bin_width=16)
        path = SNAPSHOT_DIR / "fig3_reduced.json"
        if not path.exists():
            save_snapshot(fig, path)
        # Histograms come from seeded generators: they must be exact.
        drifts = compare_to_snapshot(fig, load_snapshot(path), rel_tol=0.0)
        assert all(d.max_rel_drift == 0.0 for d in drifts)
