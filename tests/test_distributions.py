"""Tests for size-distribution generators (repro.distributions, Fig 3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import distributions as dist


ALL_NAMES = sorted(dist.DISTRIBUTIONS)


class TestCommonContract:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_in_range_and_shape(self, name):
        sizes = dist.generate_sizes(name, 500, 128, seed=3)
        assert sizes.shape == (500,)
        assert sizes.dtype == np.int64
        assert sizes.min() >= 1
        assert sizes.max() <= 128

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_deterministic_given_seed(self, name):
        a = dist.generate_sizes(name, 200, 64, seed=7)
        b = dist.generate_sizes(name, 200, 64, seed=7)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("name", ["uniform", "gaussian", "bimodal", "exponential"])
    def test_seed_changes_sample(self, name):
        a = dist.generate_sizes(name, 400, 256, seed=1)
        b = dist.generate_sizes(name, 400, 256, seed=2)
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("name", ALL_NAMES)
    @pytest.mark.parametrize("bad_batch,bad_max", [(0, 10), (-1, 10), (5, 0), (5, -3)])
    def test_invalid_arguments(self, name, bad_batch, bad_max):
        with pytest.raises(ValueError):
            dist.DISTRIBUTIONS[name](bad_batch, bad_max)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            dist.generate_sizes("zipf", 10, 10)

    @pytest.mark.parametrize("name", ALL_NAMES)
    @given(batch=st.integers(1, 300), nmax=st.integers(1, 600))
    @settings(max_examples=25, deadline=None)
    def test_property_bounds(self, name, batch, nmax):
        sizes = dist.generate_sizes(name, batch, nmax, seed=0)
        assert sizes.size == batch
        assert np.all((sizes >= 1) & (sizes <= nmax))


class TestUniform:
    def test_paper_fig3a_coverage(self):
        """Batch 2000, Nmax 512: 'most sizes appear at least once'."""
        sizes = dist.uniform_sizes(2000, 512, seed=0)
        distinct = np.unique(sizes).size
        assert distinct > 0.9 * 512

    def test_roughly_flat(self):
        sizes = dist.uniform_sizes(100_000, 512, seed=1)
        lo = np.count_nonzero(sizes <= 256)
        assert abs(lo / sizes.size - 0.5) < 0.02


class TestGaussian:
    def test_centered_on_half_max(self):
        sizes = dist.gaussian_sizes(50_000, 512, seed=2)
        assert abs(sizes.mean() - 256) < 5

    def test_boundaries_rare(self):
        """Paper: 'fewer sizes appear near the boundaries'."""
        sizes = dist.gaussian_sizes(20_000, 512, seed=3)
        near_edges = np.count_nonzero((sizes < 32) | (sizes > 480))
        middle = np.count_nonzero(np.abs(sizes - 256) < 32)
        assert near_edges < middle / 10

    def test_stddev_fraction_validated(self):
        with pytest.raises(ValueError, match="stddev_fraction"):
            dist.gaussian_sizes(10, 100, stddev_fraction=0.0)

    def test_narrow_spread_with_small_fraction(self):
        wide = dist.gaussian_sizes(20_000, 512, seed=4, stddev_fraction=0.3)
        narrow = dist.gaussian_sizes(20_000, 512, seed=4, stddev_fraction=0.05)
        assert narrow.std() < wide.std()


class TestConstantBimodalExponential:
    def test_constant(self):
        sizes = dist.constant_sizes(50, 99)
        assert np.all(sizes == 99)

    def test_bimodal_modes(self):
        sizes = dist.bimodal_sizes(20_000, 512, seed=5)
        small = np.count_nonzero(sizes < 200)
        big = np.count_nonzero(sizes > 400)
        assert small > 7000 and big > 7000
        # Almost nothing lives between the modes.
        assert np.count_nonzero((sizes > 200) & (sizes < 400)) < 500

    def test_bimodal_fraction_validated(self):
        with pytest.raises(ValueError, match="small_fraction"):
            dist.bimodal_sizes(10, 100, small_fraction=1.5)

    def test_bimodal_fraction_extremes(self):
        all_big = dist.bimodal_sizes(1000, 512, seed=6, small_fraction=0.0)
        assert all_big.mean() > 400
        all_small = dist.bimodal_sizes(1000, 512, seed=6, small_fraction=1.0)
        assert all_small.mean() < 128

    def test_exponential_skew(self):
        sizes = dist.exponential_sizes(20_000, 512, seed=7)
        assert np.median(sizes) < sizes.mean()  # right-skewed
        assert np.count_nonzero(sizes <= 64) > np.count_nonzero(sizes > 256)


class TestHistogram:
    def test_counts_sum_to_batch(self):
        sizes = dist.uniform_sizes(2000, 512, seed=0)
        lefts, counts = dist.size_histogram(sizes, bin_width=8, max_size=512)
        assert counts.sum() == 2000
        assert lefts[0] == 1
        assert len(lefts) == len(counts) == 64

    def test_single_width_bins(self):
        sizes = np.array([1, 1, 2, 5])
        lefts, counts = dist.size_histogram(sizes)
        assert counts[0] == 2 and counts[1] == 1 and counts[4] == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            dist.size_histogram(np.array([], dtype=np.int64))

    def test_bad_bin_width(self):
        with pytest.raises(ValueError, match="bin_width"):
            dist.size_histogram(np.array([3]), bin_width=0)
