"""The plan/execute split must not move the simulated clock at all.

These constants are the *exact* elapsed times the eager (pre-plan)
drivers produced for a fixed workload.  `Device.launch` timing depends
only on the kernel sequence, launch order and stream assignment, so
planning first and executing after must replay bit-identical times —
`==` on floats, no tolerance.  If a change here is deliberate (a cost
model or driver-behavior change), recapture the constants and the
benchmark snapshots together.
"""

import numpy as np
import pytest

from repro.core.batch import VBatch
from repro.core.blas_steps import BlasStepDriver
from repro.core.driver import PotrfOptions, run_potrf_vbatched
from repro.core.fused import FusedDriver
from repro.core.partial import partial_potrf_vbatched
from repro.core.separated import SeparatedDriver
from repro.device import Device
from repro import distributions as dist

# Captured from the eager drivers at the commit before the plan IR
# landed (Device(execute_numerics=False), uniform sizes, 150 matrices,
# max 300, seed 3, precision d).
EXPECTED = {
    "fused": 0.0033230769712362706,
    "fused_classic_nosort": 0.004266402276318449,
    "separated": 0.002321036404142817,
    "separated_streamed": 0.002232477998837803,
    "separated_naive": 0.003666513648176529,
    "blas": 0.0036122570767430366,
    "driver_auto": 0.0033230769712362706,
    "partial": 0.0020598992412487983,
}

RUNNERS = {
    "fused": lambda d, b, s: FusedDriver(d).factorize(b, int(s.max())),
    "fused_classic_nosort": lambda d, b, s: FusedDriver(
        d, etm="classic", sorting=False
    ).factorize(b, int(s.max())),
    "separated": lambda d, b, s: SeparatedDriver(d).factorize(b, int(s.max())),
    "separated_streamed": lambda d, b, s: SeparatedDriver(
        d, syrk_mode="streamed", syrk_streams=8
    ).factorize(b, int(s.max())),
    "separated_naive": lambda d, b, s: SeparatedDriver(d, panel_mode="naive").factorize(
        b, int(s.max())
    ),
    "blas": lambda d, b, s: BlasStepDriver(d).factorize(b, int(s.max())),
    "driver_auto": lambda d, b, s: run_potrf_vbatched(d, b, int(s.max()), PotrfOptions()),
    "partial": lambda d, b, s: partial_potrf_vbatched(d, b, np.minimum(s // 2, s)),
}


def _elapsed_for(fn):
    dev = Device(execute_numerics=False)
    sizes = dist.generate_sizes("uniform", 150, 300, seed=3)
    batch = VBatch.allocate(dev, sizes, "d")
    dev.reset_clock()
    t0 = dev.synchronize()
    fn(dev, batch, sizes)
    return dev.synchronize() - t0


@pytest.mark.parametrize("label", sorted(EXPECTED))
def test_planned_timing_is_bit_identical_to_eager(label):
    assert _elapsed_for(RUNNERS[label]) == EXPECTED[label]
