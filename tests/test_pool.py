"""Tests for the workspace memory pool and the extra device presets."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device import (
    Device,
    GlobalMemory,
    K20X,
    K40C,
    TITAN_BLACK,
    WorkspacePool,
)
from repro.errors import DeviceOutOfMemory
from repro.types import precision_info


class TestWorkspacePool:
    def test_miss_then_hit(self):
        pool = WorkspacePool(GlobalMemory(1 << 20))
        a = pool.get((10, 10), np.float64)
        assert pool.misses == 1 and pool.hits == 0
        pool.release(a)
        b = pool.get((12, 12), np.float64)  # same 2^k bin (800 B -> 1024 / 1152 -> 2048?)
        # 10x10 f64 = 800 B -> bin 1024; 12x12 = 1152 -> bin 2048: miss.
        assert pool.misses == 2
        pool.release(b)
        c = pool.get((11, 11), np.float64)  # 968 B -> bin 1024: reuses a's block
        assert pool.hits == 1
        assert c.data.shape == (11, 11)
        assert np.all(c.data == 0)

    def test_reuse_is_zeroed(self):
        pool = WorkspacePool(GlobalMemory(1 << 20))
        a = pool.get((8,), np.float64)
        a.data[...] = 7.0
        pool.release(a)
        b = pool.get((8,), np.float64)
        assert np.all(b.data == 0)

    def test_dtype_separation(self):
        pool = WorkspacePool(GlobalMemory(1 << 20))
        a = pool.get((64,), np.float64)
        pool.release(a)
        b = pool.get((128,), np.float32)  # same byte bin, different dtype
        assert pool.hits == 0 and pool.misses == 2

    def test_memory_stays_charged_until_trim(self):
        mem = GlobalMemory(1 << 20)
        pool = WorkspacePool(mem)
        a = pool.get((100,), np.float64)
        used = mem.used
        pool.release(a)
        assert mem.used == used  # retained
        assert pool.trim() == 1
        assert mem.used == 0

    def test_release_foreign_array_rejected(self):
        mem = GlobalMemory(1 << 20)
        pool = WorkspacePool(mem)
        foreign = mem.alloc((4,), np.float64)
        with pytest.raises(ValueError, match="not allocated from this pool"):
            pool.release(foreign)

    def test_pool_respects_device_capacity(self):
        pool = WorkspacePool(GlobalMemory(1024))
        with pytest.raises(DeviceOutOfMemory):
            pool.get((1024,), np.float64)

    def test_device_has_pool(self):
        dev = Device()
        a = dev.pool.get((16, 16), np.float64)
        dev.pool.release(a)
        b = dev.pool.get((16, 16), np.float64)
        assert dev.pool.hits == 1

    @given(
        shapes=st.lists(
            st.tuples(st.integers(1, 40), st.integers(1, 40)), min_size=1, max_size=30
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_get_release_cycles(self, shapes):
        pool = WorkspacePool(GlobalMemory(1 << 26))
        live = []
        for i, shape in enumerate(shapes):
            arr = pool.get(shape, np.float64)
            assert arr.data.shape == shape
            assert np.all(arr.data == 0)
            live.append(arr)
            if i % 2 == 1:
                pool.release(live.pop())
        for arr in live:
            pool.release(arr)
        assert pool.pooled_blocks == pool.misses  # every alloc is pooled now
        pool.trim()
        assert pool.memory.used == 0


class TestDevicePresets:
    def test_presets_distinct(self):
        assert K20X.num_sms == 14
        assert TITAN_BLACK.clock_hz > K40C.clock_hz
        assert K20X.global_mem_bytes < K40C.global_mem_bytes

    @pytest.mark.parametrize("spec", [K20X, TITAN_BLACK])
    def test_peaks_scale_with_spec(self, spec):
        ratio = spec.peak_flops(precision_info("s")) / K40C.peak_flops(precision_info("s"))
        expected = (spec.num_sms * spec.clock_hz) / (K40C.num_sms * K40C.clock_hz)
        assert ratio == pytest.approx(expected)

    def test_devices_run_the_framework(self):
        """The framework is device-agnostic: same code, different spec."""
        from repro.core import PotrfOptions, VBatch, potrf_vbatched
        from repro.distributions import uniform_sizes

        results = {}
        for spec in (K20X, K40C, TITAN_BLACK):
            dev = Device(spec=spec, execute_numerics=False)
            b = VBatch.allocate(dev, uniform_sizes(300, 256, seed=0), "d")
            dev.reset_clock()
            results[spec.name] = potrf_vbatched(dev, b, PotrfOptions()).gflops
        # Faster clock + equal SMs -> Titan Black ahead of the K40c;
        # fewer, slower SMs -> K20X behind.
        assert results[TITAN_BLACK.name] > results[K40C.name] > results[K20X.name]


class TestDriverPoolHygiene:
    def test_drivers_release_workspaces_on_success(self):
        from repro.core.driver import PotrfOptions, run_potrf_vbatched
        from repro.core.batch import VBatch
        from repro.distributions import uniform_sizes

        dev = Device(execute_numerics=False)
        sizes = uniform_sizes(100, 128, seed=0)
        for approach in ("fused", "separated"):
            b = VBatch.allocate(dev, sizes, "d")
            run_potrf_vbatched(dev, b, 128, PotrfOptions(approach=approach))
            # Everything the driver took from the pool went back.
            assert dev.pool.pooled_blocks == dev.pool.misses
        # Second run of the same shape is all pool hits for workspaces.
        hits_before = dev.pool.hits
        b = VBatch.allocate(dev, sizes, "d")
        run_potrf_vbatched(dev, b, 128, PotrfOptions(approach="fused"))
        assert dev.pool.hits > hits_before

    def test_workspaces_released_even_on_failure(self):
        from repro.core.fused import FusedDriver
        from repro.core.batch import VBatch

        dev = Device(execute_numerics=False)
        b = VBatch.allocate(dev, [8], "d")
        with pytest.raises(Exception):
            # nb=32 with an absurd max_n -> fused kernel rejects the
            # launch mid-sweep; the pool must still get its blocks back.
            FusedDriver(dev, nb=32, sorting=False).factorize(b, 2000)
        assert dev.pool.pooled_blocks == dev.pool.misses
