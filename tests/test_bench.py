"""Tests for the figure harness containers and reporting."""

import numpy as np
import pytest

from repro.bench import FigureResult, Series, format_figure, format_table
from repro.bench.figures import (
    aux_interface_overhead,
    fig3_distributions,
    fig4_fusion_fixed,
    fig5_fused_variants,
    fig7_crossover,
    fig10_energy,
)


class TestSeries:
    def test_ratio_to(self):
        a = Series("a", [2.0, 4.0, float("nan")])
        b = Series("b", [1.0, 0.0, 2.0])
        r = a.ratio_to(b)
        assert r[0] == pytest.approx(2.0)
        assert np.isnan(r[1]) and np.isnan(r[2])

    def test_array(self):
        np.testing.assert_array_equal(Series("a", [1, 2]).array, [1.0, 2.0])


class TestFigureResult:
    def test_add_and_get(self):
        f = FigureResult("F", "t", "x", [1, 2])
        f.add("s", [3.0, 4.0])
        assert f.get("s").values == [3.0, 4.0]

    def test_length_mismatch(self):
        f = FigureResult("F", "t", "x", [1, 2])
        with pytest.raises(ValueError):
            f.add("s", [1.0])

    def test_unknown_series(self):
        f = FigureResult("F", "t", "x", [1])
        with pytest.raises(KeyError):
            f.get("missing")


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # rectangular

    def test_format_figure_includes_notes(self):
        f = FigureResult("Fig X", "demo", "n", [1])
        f.add("v", [3.14])
        f.notes["claim"] = 2.0
        text = format_figure(f)
        assert "Fig X" in text and "claim" in text

    def test_nan_rendered(self):
        out = format_table(["x"], [[float("nan")]])
        assert "n/a" in out


class TestFigureFunctionsQuick:
    """Reduced-scale runs: each figure function produces sane series."""

    def test_fig3(self):
        f = fig3_distributions(batch_count=500, max_size=64, bin_width=8)
        assert f.get("uniform").array.sum() == 500
        assert f.get("gaussian").array.sum() == 500

    def test_fig4(self):
        f = fig4_fusion_fixed("d", sizes=(16, 64), batch_count=100)
        assert all(v > 0 for v in f.get("fused").values)
        assert f.notes["max_speedup"] > 1.0

    def test_fig5(self):
        f = fig5_fused_variants("d", nmax_values=(64, 128), batch_count=300)
        assert len(f.series) == 4
        for s in f.series:
            assert all(v > 0 for v in s.values)

    def test_fig7(self):
        f = fig7_crossover("d", nmax_values=(128, 1024), batch_count=100)
        switch = f.get("switch").array
        assert np.all(switch > 0)
        assert f.notes["configured_crossover"] > 0

    def test_fig10(self):
        f = fig10_energy(buckets=((32, 64, 200),))
        assert f.get("cpu_over_gpu").values[0] > 0

    def test_aux_overhead(self):
        f = aux_interface_overhead("d", nmax=64, batch_count=200)
        fraction = f.get("value").values[2]
        assert 0 <= fraction < 0.2


class TestAsciiChart:
    def test_renders_bars_scaled_to_max(self):
        from repro.bench import format_ascii_chart

        f = FigureResult("Fig X", "demo", "n", [1, 2])
        f.add("a", [10.0, 5.0])
        f.add("b", [float("nan"), 2.5])
        text = format_ascii_chart(f, width=20)
        lines = text.splitlines()
        assert lines[0].startswith("== Fig X")
        bar_10 = next(l for l in lines if l.strip().startswith("1 |"))
        bar_5 = next(l for l in lines if l.strip().startswith("2 |") and "#" in l)
        assert bar_10.count("#") == 20       # the max gets the full width
        assert bar_5.count("#") == 10        # half the max, half the bar
        assert any("n/a" in l for l in lines)

    def test_zero_figure(self):
        from repro.bench import format_ascii_chart

        f = FigureResult("F", "t", "x", [1])
        f.add("s", [0.0])
        assert "| " in format_ascii_chart(f)

    def test_width_validated(self):
        from repro.bench import format_ascii_chart

        f = FigureResult("F", "t", "x", [1])
        f.add("s", [1.0])
        with pytest.raises(ValueError):
            format_ascii_chart(f, width=0)


class TestCsvExport:
    def test_roundtrip(self, tmp_path):
        import csv

        f = FigureResult("F", "t", "n", [1, 2])
        f.add("a", [1.5, float("nan")])
        f.add("b", [3.0, 4.0])
        path = f.to_csv(tmp_path / "fig.csv")
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["n", "a", "b"]
        assert rows[1] == ["1", "1.5", "3.0"]
        assert rows[2][0] == "2" and rows[2][2] == "4.0"
