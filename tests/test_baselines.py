"""Tests for the baseline runners (paper §IV-F comparison points)."""

import numpy as np
import pytest

from repro.baselines import (
    BASELINES,
    BaselineResult,
    run_baseline,
    run_cpu_multithreaded,
    run_cpu_percore,
    run_hybrid,
    run_padding,
    run_vbatched,
)
from repro.core.batch import VBatch
from repro.device import Device
from repro.distributions import uniform_sizes
from repro.errors import DeviceOutOfMemory
from repro.flops import batch_flops
from repro.hostblas import cholesky_residual, make_spd_batch

SIZES = uniform_sizes(300, 256, seed=0)


class TestResultRecord:
    def test_gflops(self):
        r = BaselineResult("x", elapsed=2.0, total_flops=4e9)
        assert r.gflops == pytest.approx(2.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            BaselineResult("x", elapsed=-1.0, total_flops=1.0)


class TestCpuBaselines:
    def test_multithreaded_serializes_matrices(self):
        r = run_cpu_multithreaded(SIZES, "d")
        assert r.elapsed > 0
        assert r.total_flops == pytest.approx(batch_flops(SIZES, "potrf", "d"))
        assert r.core_busy is not None and r.core_busy.size == 16

    def test_percore_dynamic_beats_static(self):
        dyn = run_cpu_percore(SIZES, "d", scheduling="dynamic")
        stat = run_cpu_percore(SIZES, "d", scheduling="static")
        assert dyn.elapsed < stat.elapsed
        assert dyn.extra["imbalance"] < stat.extra["imbalance"]

    def test_percore_beats_multithreaded_on_small_sizes(self):
        """Paper: one core per matrix wins for batched small problems."""
        mt = run_cpu_multithreaded(SIZES, "d")
        dyn = run_cpu_percore(SIZES, "d")
        assert dyn.gflops > mt.gflops

    def test_single_precision_faster(self):
        d = run_cpu_percore(SIZES, "d")
        s = run_cpu_percore(SIZES, "s")
        assert s.elapsed < d.elapsed

    def test_validation(self):
        with pytest.raises(ValueError):
            run_cpu_percore(np.array([]), "d")
        with pytest.raises(ValueError):
            run_cpu_percore(np.array([0]), "d")
        with pytest.raises(ValueError):
            run_cpu_multithreaded(np.array([-3]), "d")


class TestHybridBaseline:
    def test_numerics_correct(self):
        dev = Device()
        mats = make_spd_batch([40, 130, 17], "d", seed=1)
        b = VBatch.from_host(dev, mats)
        dev.reset_clock()
        r = run_hybrid(dev, b)
        assert r.elapsed > 0
        outs = b.download_matrices()
        worst = max(cholesky_residual(a, l) for a, l in zip(mats, outs))
        assert worst < 1e-13

    def test_hybrid_loses_to_vbatched(self):
        dev1 = Device(execute_numerics=False)
        b1 = VBatch.allocate(dev1, SIZES, "d")
        dev1.reset_clock()
        hyb = run_hybrid(dev1, b1)
        dev2 = Device(execute_numerics=False)
        b2 = VBatch.allocate(dev2, SIZES, "d")
        dev2.reset_clock()
        vb = run_vbatched(dev2, b2, int(SIZES.max()))
        assert vb.gflops > 3 * hyb.gflops

    def test_transfer_time_on_timeline(self):
        dev = Device(execute_numerics=False)
        b = VBatch.allocate(dev, [64], "d")
        dev.reset_clock()
        run_hybrid(dev, b)
        cats = dev.timeline.categories()
        assert any(k.startswith("hybrid:panel") for k in cats)

    def test_validation(self):
        dev = Device(execute_numerics=False)
        b = VBatch.allocate(dev, [8], "d")
        with pytest.raises(ValueError):
            run_hybrid(dev, b, panel_nb=0)


class TestPaddingBaseline:
    def test_counts_useful_flops_only(self):
        dev = Device(execute_numerics=False)
        sizes = np.array([10, 20])
        r = run_padding(dev, sizes, 64, "d")
        assert r.total_flops == pytest.approx(batch_flops(sizes, "potrf", "d"))
        assert r.extra["padded_flops"] > r.total_flops

    def test_oom_propagates(self):
        dev = Device(execute_numerics=False)
        with pytest.raises(DeviceOutOfMemory):
            run_padding(dev, np.full(800, 500), 2000, "d")

    def test_slower_than_vbatched(self):
        sizes = uniform_sizes(200, 300, seed=2)
        pad = run_baseline("fixed-batched+padding", sizes, "d")
        vb = run_baseline("magma-vbatched", sizes, "d")
        assert vb.gflops > 1.5 * pad.gflops


class TestRegistry:
    def test_all_names_run(self):
        sizes = uniform_sizes(60, 128, seed=3)
        for name in BASELINES:
            r = run_baseline(name, sizes, "d")
            assert r.gflops > 0, name

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown baseline"):
            run_baseline("gpu-magic", SIZES, "d")

    def test_paper_ordering_holds(self):
        """Fig 8's ranking at a representative point."""
        sizes = uniform_sizes(400, 512, seed=4)
        g = {name: run_baseline(name, sizes, "d").gflops for name in BASELINES}
        assert g["magma-vbatched"] > g["cpu-1core-dynamic"]
        assert g["cpu-1core-dynamic"] > g["cpu-1core-static"]
        assert g["cpu-1core-static"] > g["cpu-mkl-mt"]
        assert g["cpu-mkl-mt"] > g["magma-hybrid"]
        assert g["magma-vbatched"] > g["fixed-batched+padding"]
