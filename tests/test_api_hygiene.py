"""API hygiene: every public item is exported deliberately and documented."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.types",
    "repro.errors",
    "repro.flops",
    "repro.distributions",
    "repro.hostblas",
    "repro.device",
    "repro.cpu",
    "repro.kernels",
    "repro.core",
    "repro.baselines",
    "repro.energy",
    "repro.autotune",
    "repro.extensions",
    "repro.batched_blas",
    "repro.multifrontal",
    "repro.bench",
    "repro.serving",
]


@pytest.mark.parametrize("modname", PUBLIC_MODULES)
def test_module_has_docstring_and_all(modname):
    mod = importlib.import_module(modname)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 20, f"{modname} lacks a docstring"
    assert hasattr(mod, "__all__") and mod.__all__, f"{modname} lacks __all__"


@pytest.mark.parametrize("modname", PUBLIC_MODULES)
def test_all_entries_resolve_and_are_documented(modname):
    mod = importlib.import_module(modname)
    for name in mod.__all__:
        assert hasattr(mod, name), f"{modname}.__all__ lists missing {name!r}"
        obj = getattr(mod, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{modname}.{name} has no docstring"


def test_public_functions_have_documented_params():
    """Spot-check: the headline entry points document their arguments."""
    import repro

    for fn in (
        repro.potrf_vbatched,
        repro.potrf_vbatched_max,
        repro.getrf_vbatched,
        repro.geqrf_vbatched,
        repro.potrs_vbatched,
    ):
        doc = inspect.getdoc(fn)
        assert doc and len(doc.splitlines()) >= 2, fn.__qualname__


def test_version_is_exposed():
    import repro

    assert repro.__version__ == "1.0.0"
