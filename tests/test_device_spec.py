"""Tests for the device description and occupancy rules."""

import pytest

from repro.device import K40C, DeviceSpec
from repro.errors import LaunchError
from repro.types import precision_info


class TestK40CSpec:
    def test_peak_flops_match_published_numbers(self):
        # 15 SMX * 192 FP32 lanes * 2 flop * 745 MHz = 4.29 Tflop/s
        assert K40C.peak_flops(precision_info("s")) == pytest.approx(4.29e12, rel=0.01)
        # 15 SMX * 64 FP64 lanes * 2 flop * 745 MHz = 1.43 Tflop/s
        assert K40C.peak_flops(precision_info("d")) == pytest.approx(1.43e12, rel=0.01)

    def test_complex_peaks_equal_real_peaks(self):
        assert K40C.peak_flops(precision_info("c")) == K40C.peak_flops(precision_info("s"))
        assert K40C.peak_flops(precision_info("z")) == K40C.peak_flops(precision_info("d"))

    def test_per_sm_peak(self):
        assert K40C.peak_flops_per_sm(precision_info("d")) == pytest.approx(
            K40C.peak_flops(precision_info("d")) / 15
        )

    def test_memory_capacity_is_12_gb(self):
        assert K40C.global_mem_bytes == 12 * 1024**3

    def test_shared_memory_hosts_78x78_double(self):
        """Paper §I: 48KB hosts one <=78x78 double matrix."""
        assert 78 * 78 * 8 <= K40C.shared_mem_per_sm < 79 * 79 * 8


class TestOccupancy:
    def test_thread_limited(self):
        occ = K40C.occupancy(threads_per_block=512)
        assert occ.blocks_per_sm == 4  # 2048 threads / 512
        assert occ.limiter in ("threads", "warps")
        assert occ.concurrent_blocks == 4 * 15

    def test_block_count_limited(self):
        occ = K40C.occupancy(threads_per_block=32)
        assert occ.blocks_per_sm == 16  # Kepler cap
        assert occ.limiter == "blocks"

    def test_shared_mem_limited(self):
        occ = K40C.occupancy(threads_per_block=64, shared_mem_per_block=24 * 1024)
        assert occ.blocks_per_sm == 2
        assert occ.limiter == "shared_mem"

    def test_register_limited(self):
        occ = K40C.occupancy(threads_per_block=256, regs_per_thread=255)
        assert occ.blocks_per_sm == 65536 // (255 * 256)
        assert occ.limiter == "registers"

    def test_resident_warps(self):
        occ = K40C.occupancy(threads_per_block=96)  # 3 warps
        assert occ.resident_warps_per_sm == occ.blocks_per_sm * 3

    def test_too_many_threads_rejected(self):
        with pytest.raises(LaunchError, match="threads/block"):
            K40C.occupancy(threads_per_block=2048)

    def test_zero_threads_rejected(self):
        with pytest.raises(LaunchError):
            K40C.occupancy(threads_per_block=0)

    def test_oversized_shared_mem_rejected(self):
        with pytest.raises(LaunchError, match="shared memory"):
            K40C.occupancy(threads_per_block=64, shared_mem_per_block=49 * 1024)

    def test_bad_regs_rejected(self):
        with pytest.raises(LaunchError):
            K40C.occupancy(threads_per_block=64, regs_per_thread=0)
        with pytest.raises(LaunchError):
            K40C.occupancy(threads_per_block=64, regs_per_thread=500)

    def test_zero_blocks_config_rejected(self):
        # 1024 threads x 255 regs = 261k regs > 65536 per SM.
        with pytest.raises(LaunchError, match="zero blocks"):
            K40C.occupancy(threads_per_block=1024, regs_per_thread=255)

    def test_occupancy_monotone_in_shared_mem(self):
        prev = None
        for smem in (0, 4096, 12288, 24576, 49152 - 4096):
            occ = K40C.occupancy(threads_per_block=64, shared_mem_per_block=smem)
            if prev is not None:
                assert occ.blocks_per_sm <= prev
            prev = occ.blocks_per_sm


class TestCustomSpec:
    def test_spec_is_frozen(self):
        with pytest.raises(AttributeError):
            K40C.num_sms = 3

    def test_small_device(self):
        tiny = DeviceSpec(
            name="tiny", num_sms=2, clock_hz=1e9, fp32_lanes_per_sm=32,
            fp64_lanes_per_sm=16, warp_size=32, max_threads_per_block=256,
            max_threads_per_sm=512, max_blocks_per_sm=4, max_warps_per_sm=16,
            shared_mem_per_sm=16 * 1024, shared_mem_per_block=16 * 1024,
            registers_per_sm=32768, max_registers_per_thread=128,
            global_mem_bytes=1 << 30, global_mem_bandwidth=100e9,
            pcie_bandwidth=8e9, pcie_latency=1e-5, kernel_launch_overhead=5e-6,
        )
        assert tiny.peak_flops(precision_info("s")) == pytest.approx(2 * 32 * 2 * 1e9)
        assert tiny.occupancy(128).blocks_per_sm == 4
