"""Tests for the vbatched LU/QR/potrs extensions (paper §V)."""

import numpy as np
import pytest

from repro import Device, PotrfOptions, VBatch, make_spd_batch, potrf_vbatched
from repro.errors import ArgumentError
from repro.extensions import geqrf_vbatched, getrf_vbatched, potrs_vbatched
from repro.hostblas import apply_pivots, build_q


def random_square_batch(sizes, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    mats = []
    for n in sizes:
        a = rng.standard_normal((n, n))
        if np.dtype(dtype).kind == "c":
            a = a + 1j * rng.standard_normal((n, n))
        mats.append((a + n * np.eye(n)).astype(dtype))
    return mats


SIZES = [5, 33, 80, 128, 17, 1]


class TestGetrfVbatched:
    def test_factorization_correct(self):
        dev = Device()
        mats = random_square_batch(SIZES, seed=1)
        b = VBatch.from_host(dev, mats)
        res = getrf_vbatched(dev, b)
        assert res.failed_count == 0
        assert res.gflops > 0
        outs = b.download_matrices()
        for i, (a, f) in enumerate(zip(mats, outs)):
            n = a.shape[0]
            l = np.tril(f, -1) + np.eye(n)
            u = np.triu(f)
            recon = apply_pivots(l @ u, res.ipivs[i, :n], forward=False)
            np.testing.assert_allclose(recon, a, atol=1e-9)

    def test_pivots_within_bounds(self):
        dev = Device()
        mats = random_square_batch([40, 12], seed=2)
        b = VBatch.from_host(dev, mats)
        res = getrf_vbatched(dev, b)
        for i, n in enumerate([40, 12]):
            piv = res.ipivs[i, :n]
            assert np.all(piv >= 1) and np.all(piv <= n)

    def test_pivoting_handles_zero_leading_entry(self):
        dev = Device()
        a = np.array([[0.0, 2.0], [3.0, 1.0]])
        b = VBatch.from_host(dev, [a])
        res = getrf_vbatched(dev, b)
        assert res.failed_count == 0
        assert res.ipivs[0, 0] == 2

    def test_launch_structure(self):
        dev = Device(execute_numerics=False)
        b = VBatch.allocate(dev, [200] * 4, "d")
        res = getrf_vbatched(dev, b, max_n=200, panel_nb=64)
        assert res.launch_stats["steps"] == 4  # ceil(200/64)
        assert res.launch_stats.panel_launches == 4
        assert res.launch_stats.swap_launches == 4
        assert res.launch_stats.gemm_launches >= 3

    def test_reuses_vbatched_gemm(self):
        """The §V claim: the BLAS kernels are reused out of the box."""
        dev = Device(execute_numerics=False)
        b = VBatch.allocate(dev, [150] * 3, "d")
        getrf_vbatched(dev, b, max_n=150)
        names = {rec.kernel_name for rec in dev.launches}
        assert any("lu_update" in n for n in names)

    def test_validation(self):
        dev = Device()
        b = VBatch.from_host(dev, random_square_batch([8]))
        with pytest.raises(ArgumentError):
            getrf_vbatched(dev, b, panel_nb=0)
        with pytest.raises(ArgumentError):
            getrf_vbatched(dev, b, max_n=4)


class TestGeqrfVbatched:
    def test_factorization_correct(self):
        dev = Device()
        mats = random_square_batch(SIZES, seed=3)
        b = VBatch.from_host(dev, mats)
        res = geqrf_vbatched(dev, b)
        assert res.gflops > 0
        outs = b.download_matrices()
        for i, (a, f) in enumerate(zip(mats, outs)):
            n = a.shape[0]
            q = build_q(f, res.taus[i, :n])
            np.testing.assert_allclose(q @ np.triu(f), a, atol=1e-8)
            np.testing.assert_allclose(q.T @ q, np.eye(n), atol=1e-9)

    def test_larfb_as_two_gemms_per_step(self):
        dev = Device(execute_numerics=False)
        b = VBatch.allocate(dev, [150] * 3, "d")
        res = geqrf_vbatched(dev, b, max_n=150, panel_nb=64)
        # Every step except the last (no trailing columns) applies the
        # block reflector with exactly two gemm launches.
        assert res.launch_stats.gemm_launches == 2 * (res.launch_stats["steps"] - 1)

    def test_validation(self):
        dev = Device()
        b = VBatch.from_host(dev, random_square_batch([8]))
        with pytest.raises(ArgumentError):
            geqrf_vbatched(dev, b, panel_nb=-1)


class TestPotrsVbatched:
    def test_solves_against_original(self):
        dev = Device()
        sizes = [6, 40, 90]
        mats = make_spd_batch(sizes, "d", seed=4)
        b = VBatch.from_host(dev, mats)
        potrf_vbatched(dev, b, PotrfOptions(on_error="raise"))
        rng = np.random.default_rng(5)
        rhs = [rng.standard_normal((n, 2)) for n in sizes]
        originals = [r.copy() for r in rhs]
        # Solve against the factors stored in the batch (in the device
        # arrays); RHS views alias host arrays for verification.
        views = []
        for i, r in enumerate(rhs):
            n = sizes[i]
            views.append(r)
        res = potrs_vbatched(dev, b, views)
        assert res.gflops > 0
        for a, x, f in zip(mats, rhs, originals):
            np.testing.assert_allclose(a @ x, f, atol=1e-9)

    def test_vector_rhs_and_skips(self):
        dev = Device()
        sizes = [10, 20]
        mats = make_spd_batch(sizes, "d", seed=6)
        b = VBatch.from_host(dev, mats)
        potrf_vbatched(dev, b)
        rng = np.random.default_rng(7)
        x = rng.standard_normal(20)
        f = x.copy()
        potrs_vbatched(dev, b, [None, x])
        np.testing.assert_allclose(mats[1] @ x, f, atol=1e-9)

    def test_validation(self):
        dev = Device()
        b = VBatch.from_host(dev, make_spd_batch([4, 5], "d"))
        with pytest.raises(ArgumentError):
            potrs_vbatched(dev, b, [None])  # wrong count
        with pytest.raises(ArgumentError):
            potrs_vbatched(dev, b, [np.zeros(3), None])  # wrong rows

    def test_timing_charged(self):
        dev = Device()
        sizes = [64] * 20
        mats = make_spd_batch(sizes, "d", seed=8)
        b = VBatch.from_host(dev, mats)
        potrf_vbatched(dev, b)
        t0 = dev.synchronize()
        potrs_vbatched(dev, b, [np.ones((64, 4)) for _ in sizes])
        assert dev.synchronize() > t0


class TestGetrsVbatched:
    def test_solves_with_pivots(self):
        dev = Device()
        sizes = [7, 30, 64]
        mats = random_square_batch(sizes, seed=9)
        # Force a pivot-demanding first matrix.
        mats[0][0, 0] = 0.0
        b = VBatch.from_host(dev, mats)
        res = getrf_vbatched(dev, b)
        assert res.failed_count == 0
        from repro.extensions import getrs_vbatched

        rng = np.random.default_rng(10)
        rhs = [rng.standard_normal((n, 3)) for n in sizes]
        originals = [r.copy() for r in rhs]
        sol = getrs_vbatched(dev, b, res.ipivs, rhs)
        assert sol.gflops > 0
        for a, x, f in zip(mats, rhs, originals):
            np.testing.assert_allclose(a @ x, f, atol=1e-8)

    def test_validation(self):
        dev = Device()
        mats = random_square_batch([4, 5], seed=11)
        b = VBatch.from_host(dev, mats)
        res = getrf_vbatched(dev, b)
        from repro.extensions import getrs_vbatched

        with pytest.raises(ArgumentError):
            getrs_vbatched(dev, b, res.ipivs, [None])
        with pytest.raises(ArgumentError):
            getrs_vbatched(dev, b, res.ipivs[:1], [None, None])
        with pytest.raises(ArgumentError):
            getrs_vbatched(dev, b, res.ipivs, [np.zeros(9), None])


class TestDriverRoutines:
    def test_posv_end_to_end(self):
        from repro.extensions import posv_vbatched

        dev = Device()
        sizes = [8, 30, 77]
        mats = make_spd_batch(sizes, "d", seed=20)
        b = VBatch.from_host(dev, mats)
        rng = np.random.default_rng(21)
        rhs = [rng.standard_normal((n, 2)) for n in sizes]
        keep = [r.copy() for r in rhs]
        res = posv_vbatched(dev, b, rhs)
        assert res.failed_count == 0
        assert res.elapsed == res.factor_elapsed + res.solve_elapsed
        for a, x, f in zip(mats, rhs, keep):
            np.testing.assert_allclose(a @ x, f, atol=1e-9)

    def test_posv_raises_on_indefinite(self):
        from repro.errors import BatchNumericalError
        from repro.extensions import posv_vbatched

        dev = Device()
        bad = np.eye(4)
        bad[1, 1] = -2.0
        b = VBatch.from_host(dev, [bad])
        with pytest.raises(BatchNumericalError):
            posv_vbatched(dev, b, [np.ones(4)])

    def test_gesv_end_to_end(self):
        from repro.extensions import gesv_vbatched

        dev = Device()
        sizes = [5, 40, 66]
        mats = random_square_batch(sizes, seed=22)
        mats[0][0, 0] = 0.0  # force pivoting
        b = VBatch.from_host(dev, mats)
        rng = np.random.default_rng(23)
        rhs = [rng.standard_normal(n) for n in sizes]
        keep = [r.copy() for r in rhs]
        res = gesv_vbatched(dev, b, rhs)
        assert res.failed_count == 0
        for a, x, f in zip(mats, rhs, keep):
            np.testing.assert_allclose(a @ x, f, atol=1e-8)

    def test_rhs_count_validated(self):
        from repro.extensions import gesv_vbatched, posv_vbatched

        dev = Device()
        b = VBatch.from_host(dev, make_spd_batch([4, 4], "d"))
        with pytest.raises(ArgumentError):
            posv_vbatched(dev, b, [None])
        with pytest.raises(ArgumentError):
            gesv_vbatched(dev, b, [None])
