"""Tests for the VBatch container and the implicit-sorting scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batch import VBatch
from repro.core.sorting import SizeWindow, partition_windows, sorted_order
from repro.device import Device
from repro.errors import ArgumentError, DeviceOutOfMemory
from repro.hostblas import make_spd_batch
from repro.types import Precision


class TestVBatch:
    def test_from_host_roundtrip(self):
        dev = Device()
        mats = make_spd_batch([3, 7, 1], "d", seed=0)
        b = VBatch.from_host(dev, mats)
        assert b.batch_count == 3
        assert b.precision is Precision.D
        assert b.max_size_host == 7
        for src, back in zip(mats, b.download_matrices()):
            np.testing.assert_array_equal(src, back)

    def test_allocate_timing_only(self):
        dev = Device(execute_numerics=False)
        b = VBatch.allocate(dev, [4, 9], "s")
        assert b.batch_count == 2
        assert b.precision is Precision.S
        assert b.total_bytes == (16 + 81) * 4

    def test_device_metadata_resident(self):
        dev = Device()
        b = VBatch.from_host(dev, make_spd_batch([5, 6], "d"))
        np.testing.assert_array_equal(b.sizes_dev.data, [5, 6])
        np.testing.assert_array_equal(b.ldas_dev.data, [5, 6])
        np.testing.assert_array_equal(b.infos_dev.data, [0, 0])

    def test_upload_charges_memory_and_time(self):
        dev = Device()
        VBatch.from_host(dev, make_spd_batch([50], "d"))
        assert dev.memory.used >= 50 * 50 * 8
        assert dev.synchronize() > 0

    def test_lda_padding(self):
        dev = Device()
        b = VBatch.allocate(dev, [4, 8], "d", ldas=[10, 8])
        assert b.matrices[0].shape == (10, 4)
        assert b.matrix_view(0).shape == (4, 4)

    def test_lda_smaller_than_n_rejected(self):
        dev = Device()
        with pytest.raises(ArgumentError):
            VBatch.allocate(dev, [8], "d", ldas=[4])

    def test_empty_batch_rejected(self):
        dev = Device()
        with pytest.raises(ArgumentError):
            VBatch.from_host(dev, [])
        with pytest.raises(ArgumentError):
            VBatch.allocate(dev, [], "d")

    def test_mixed_dtypes_rejected(self):
        dev = Device()
        mats = [np.eye(3, dtype=np.float64), np.eye(3, dtype=np.float32)]
        with pytest.raises(ArgumentError, match="mixed dtypes"):
            VBatch.from_host(dev, mats)

    def test_nonsquare_rejected(self):
        dev = Device()
        with pytest.raises(ArgumentError, match="square"):
            VBatch.from_host(dev, [np.ones((2, 3))])

    def test_free_releases_device_memory(self):
        dev = Device()
        b = VBatch.from_host(dev, make_spd_batch([30, 40], "d"))
        used = dev.memory.used
        assert used > 0
        b.free()
        assert dev.memory.used < used / 10  # only unrelated residue

    def test_oom_on_huge_batch(self):
        dev = Device()
        with pytest.raises(DeviceOutOfMemory):
            VBatch.allocate(dev, [2000] * 800, "d")  # 25.6 GB > 12 GB


class TestSortedOrder:
    def test_descending(self):
        sizes = np.array([5, 9, 1, 9, 3])
        order = sorted_order(sizes)
        assert list(sizes[order]) == [9, 9, 5, 3, 1]

    def test_stable_for_ties(self):
        sizes = np.array([4, 4, 4])
        np.testing.assert_array_equal(sorted_order(sizes), [0, 1, 2])


class TestPartitionWindows:
    def test_basic_partition(self):
        sizes = np.array([100, 50, 10, 80])
        order = sorted_order(sizes)
        wins = partition_windows(sizes, order, offset=0, window_width=32)
        # remaining: 100, 80, 50, 10 -> windows (96,128],(64,96],(32,64],(0,32]
        assert [w.max_m for w in wins] == [100, 80, 50, 10]
        assert [len(w.indices) for w in wins] == [1, 1, 1, 1]

    def test_grouping_within_window(self):
        """Windows align to multiples of the width: (32,64] then (0,32]."""
        sizes = np.array([33, 40, 60, 64, 2])
        order = sorted_order(sizes)
        wins = partition_windows(sizes, order, 0, 32)
        assert [set(sizes[w.indices]) for w in wins] == [{33, 40, 60, 64}, {2}]
        assert [w.max_m for w in wins] == [64, 2]

    def test_offset_excludes_finished(self):
        sizes = np.array([10, 100])
        order = sorted_order(sizes)
        wins = partition_windows(sizes, order, offset=50, window_width=32)
        assert len(wins) == 1
        assert wins[0].max_m == 50
        assert list(wins[0].indices) == [1]

    def test_all_finished(self):
        sizes = np.array([4, 5])
        assert partition_windows(sizes, sorted_order(sizes), 10, 8) == []

    def test_min_count_merges(self):
        sizes = np.arange(1, 101)  # 1..100
        order = sorted_order(sizes)
        plain = partition_windows(sizes, order, 0, 10)
        merged = partition_windows(sizes, order, 0, 10, min_count=50)
        assert len(plain) == 10
        assert len(merged) <= 2
        assert sum(len(w.indices) for w in merged) == 100

    def test_windows_cover_live_exactly_once(self):
        sizes = np.array([7, 7, 13, 90, 64, 31, 2, 55])
        order = sorted_order(sizes)
        wins = partition_windows(sizes, order, 0, 16)
        seen = np.concatenate([w.indices for w in wins])
        assert sorted(seen) == list(range(len(sizes)))

    def test_validation(self):
        sizes = np.array([4])
        with pytest.raises(ValueError):
            partition_windows(sizes, sorted_order(sizes), 0, 0)
        with pytest.raises(ValueError):
            partition_windows(sizes, sorted_order(sizes), -1, 8)
        with pytest.raises(ValueError):
            SizeWindow(np.array([], dtype=np.int64), 4)
        with pytest.raises(ValueError):
            SizeWindow(np.array([1]), 0)

    @given(
        sizes=st.lists(st.integers(1, 300), min_size=1, max_size=80),
        offset=st.integers(0, 300),
        width=st.integers(1, 64),
        min_count=st.integers(0, 40),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_partition_invariants(self, sizes, offset, width, min_count):
        sizes = np.array(sizes)
        order = sorted_order(sizes)
        wins = partition_windows(sizes, order, offset, width, min_count)
        live = np.flatnonzero(sizes > offset)
        covered = np.concatenate([w.indices for w in wins]) if wins else np.array([], int)
        # Every live matrix exactly once; no finished matrix included.
        assert sorted(covered) == sorted(live)
        for w in wins:
            remaining = sizes[w.indices] - offset
            assert np.all(remaining >= 1)
            assert w.max_m == remaining.max()
