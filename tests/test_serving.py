"""End-to-end batch-server tests (repro.serving).

The headline guarantee: a request served through the aggregation tier
yields *bit-identical* results to calling ``potrf_vbatched`` directly
on the same aggregated batch — the server adds scheduling, never
numerics.  (The aggregated batch is the unit of comparison because the
fused driver's blocking depends on the launch's ``max_n``: the same
matrix factored inside different batches may legitimately differ in
the last ulp.)
"""

import threading

import numpy as np
import pytest

from repro import make_spd, make_spd_batch
from repro.core import PlanCache, PotrfOptions, VBatch
from repro.core.driver import run_potrf_vbatched
from repro.device import Device, DeviceGroup
from repro.errors import AdmissionError, ArgumentError, ServingError
from repro.serving import BatchServer, closed_loop


def _direct_factors(matrices, devices=None):
    """Factor ``matrices`` as ONE direct vbatched launch; return factors."""
    device = devices.devices[0] if devices is not None else Device()
    batch = VBatch.from_host(device, matrices)
    run_potrf_vbatched(
        device, batch, max(m.shape[0] for m in matrices), PotrfOptions(), devices=devices
    )
    out = batch.download_matrices()
    batch.free()
    return out


def _served_batches(responses, requests_by_id):
    """Reconstruct each dispatched batch in the server's launch order."""
    groups: dict[int, list] = {}
    for resp in responses:
        groups.setdefault(resp.batch_id, []).append(resp)
    for batch_id in sorted(groups):
        resps = sorted(
            groups[batch_id],
            key=lambda r: (-requests_by_id[r.req_id].shape[0], r.req_id),
        )
        yield [requests_by_id[r.req_id] for r in resps], resps


class TestSubmitValidation:
    def test_rejects_non_square_matrices(self):
        server = BatchServer(Device())
        with pytest.raises(ArgumentError, match="square"):
            server.submit(np.zeros((4, 5)))
        with pytest.raises(ArgumentError):
            server.submit(np.zeros(4))

    def test_rejects_negative_deadline_and_bad_rhs(self):
        server = BatchServer(Device())
        with pytest.raises(ArgumentError, match="deadline"):
            server.submit(np.eye(4), deadline=-1.0)
        with pytest.raises(ArgumentError, match="rows"):
            server.submit(np.eye(4), np.ones(3))

    def test_constructor_validation(self):
        with pytest.raises(ArgumentError, match="admission"):
            BatchServer(Device(), admission="drop")
        with pytest.raises(ArgumentError, match="queue_limit"):
            BatchServer(Device(), queue_limit=0)

    def test_submit_many_checks_rhs_count(self):
        server = BatchServer(Device())
        with pytest.raises(ArgumentError, match="rhs entries"):
            server.submit_many([np.eye(4), np.eye(4)], rhs=[np.ones(4)])


class TestDifferentialEquivalence:
    def test_served_factor_matches_direct_single_batch(self):
        """FIFO with everything in one window == one direct launch,
        whole-stream bit equality."""
        matrices = make_spd_batch([48, 7, 33, 64, 12, 33], seed=3)
        server = BatchServer(Device(), policy="fifo", max_batch=len(matrices))
        futures = server.submit_many(matrices)
        assert server.pump(force=True) == len(matrices)
        responses = [f.result(timeout=5.0) for f in futures]
        assert all(r.ok and r.batch_id == 0 for r in responses)

        order = sorted(range(len(matrices)), key=lambda i: (-matrices[i].shape[0], i))
        direct = _direct_factors([matrices[i] for i in order])
        for slot, i in enumerate(order):
            assert np.array_equal(responses[i].factor, direct[slot]), f"matrix {i}"

    @pytest.mark.parametrize("policy", ["fifo", "size-bucket", "greedy-window"])
    def test_served_equals_direct_on_same_aggregated_batches(self, policy):
        sizes = [16, 90, 17, 88, 16, 5, 91, 40, 41, 6]
        matrices = make_spd_batch(sizes, seed=11)
        server = BatchServer(Device(), policy=policy, max_batch=4)
        futures = server.submit_many(matrices)
        while server.pump(force=True):
            pass
        responses = [f.result(timeout=5.0) for f in futures]
        by_id = {f_i: m for f_i, m in enumerate(matrices)}
        assert all(r.ok for r in responses)

        checked = 0
        for batch_matrices, resps in _served_batches(responses, by_id):
            direct = _direct_factors(batch_matrices)
            for got, want in zip(resps, direct):
                assert np.array_equal(got.factor, want), f"req {got.req_id}"
                checked += 1
        assert checked == len(matrices)

    def test_multi_device_dispatch_matches_direct_sharded(self):
        sizes = [64, 63, 32, 30, 16, 65, 31, 15]
        matrices = make_spd_batch(sizes, seed=5)
        group = DeviceGroup.simulated(3)
        server = BatchServer(devices=group, policy="fifo", max_batch=len(sizes))
        futures = server.submit_many(matrices)
        server.pump(force=True)
        responses = [f.result(timeout=5.0) for f in futures]
        assert all(r.ok for r in responses)
        assert server.metrics.batches[0].devices_used == 3

        order = sorted(range(len(matrices)), key=lambda i: (-matrices[i].shape[0], i))
        direct = _direct_factors(
            [matrices[i] for i in order], devices=DeviceGroup.simulated(3)
        )
        for slot, i in enumerate(order):
            assert np.array_equal(responses[i].factor, direct[slot]), f"matrix {i}"

    def test_posv_solution_solves_the_system(self):
        rng = np.random.default_rng(7)
        matrices = make_spd_batch([24, 25, 24], seed=9)
        rhs = [rng.standard_normal(m.shape[0]) for m in matrices]
        server = BatchServer(Device(), policy="fifo", max_batch=3)
        futures = server.submit_many(matrices, rhs=rhs)
        server.pump(force=True)
        for m, b, fut in zip(matrices, rhs, futures):
            resp = fut.result(timeout=5.0)
            assert resp.ok and resp.op == "posv"
            np.testing.assert_allclose(m @ resp.solution, b, rtol=1e-9, atol=1e-9)
            # the caller's rhs array is never mutated
            assert not np.array_equal(resp.solution, b)

    def test_non_spd_request_fails_alone_not_its_batchmates(self):
        bad = -np.eye(16)
        good = make_spd(16, seed=2)
        server = BatchServer(Device(), policy="fifo", max_batch=2)
        f_bad = server.submit(bad, np.ones(16))
        f_good = server.submit(good)
        server.pump(force=True)
        r_bad, r_good = f_bad.result(5.0), f_good.result(5.0)
        assert not r_bad.ok and r_bad.info > 0 and r_bad.solution is None
        assert r_good.ok
        expected = _direct_factors([bad, good])  # same aggregated launch
        assert np.array_equal(r_good.factor, expected[1])


class TestAsyncWorker:
    def test_worker_serves_on_window_expiry(self):
        matrices = make_spd_batch([20, 21, 20], seed=4)
        with BatchServer(Device(), max_batch=64, max_wait=1e-3) as server:
            server.start()
            futures = server.submit_many(matrices)
            responses = [f.result(timeout=5.0) for f in futures]
        assert all(r.ok for r in responses)
        assert server.metrics.completed == 3

    def test_worker_survives_a_failing_dispatch(self):
        server = BatchServer(Device(), max_wait=1e-3)
        server.start()
        f_bad = server.submit(np.full((4, 4), np.nan))
        resp = f_bad.result(timeout=5.0)  # NaN input: served, info != 0
        assert not resp.ok
        f_ok = server.submit(make_spd(8, seed=1))
        assert f_ok.result(timeout=5.0).ok
        server.shutdown()

    def test_mid_stream_drain_serves_everything_then_keeps_accepting(self):
        matrices = make_spd_batch([12] * 6, seed=6)
        server = BatchServer(Device(), max_batch=2, max_wait=5e-4)
        server.start()
        futures = server.submit_many(matrices[:4])
        assert server.drain(timeout=5.0)
        assert all(f.done() for f in futures)
        assert server.queue_depth == 0
        late = server.submit_many(matrices[4:])  # drain is not shutdown
        assert all(f.result(timeout=5.0).ok for f in late)
        server.shutdown()

    def test_shutdown_without_drain_cancels_pending(self):
        server = BatchServer(Device(), max_batch=64, max_wait=60.0)
        futures = server.submit_many(make_spd_batch([8, 8, 8], seed=1))
        server.shutdown(drain=False)
        for fut in futures:
            with pytest.raises(ServingError, match="shut down"):
                fut.result(timeout=1.0)
        assert server.metrics.cancelled == 3
        with pytest.raises(AdmissionError):
            server.submit(np.eye(4))
        server.shutdown()  # idempotent

    def test_shutdown_with_drain_serves_queued_requests(self):
        server = BatchServer(Device(), max_batch=64, max_wait=60.0)
        server.start()
        futures = server.submit_many(make_spd_batch([8, 9], seed=1))
        server.shutdown(drain=True, timeout=5.0)
        assert all(f.result(timeout=1.0).ok for f in futures)

    def test_context_manager_drains_on_clean_exit(self):
        with BatchServer(Device(), max_wait=60.0) as server:
            fut = server.submit(make_spd(8, seed=0))
        assert fut.result(timeout=1.0).ok

    def test_start_after_shutdown_raises(self):
        server = BatchServer(Device())
        server.shutdown()
        with pytest.raises(ServingError, match="stopped"):
            server.start()


class TestAdmissionControl:
    def test_reject_mode_fails_fast_when_full(self):
        server = BatchServer(Device(), queue_limit=2, admission="reject")
        server.submit(np.eye(4))
        server.submit(np.eye(4))
        with pytest.raises(AdmissionError, match="queue full"):
            server.submit(np.eye(4))
        assert server.metrics.rejected == 1
        assert server.queue_depth == 2

    def test_block_mode_applies_backpressure(self):
        matrices = make_spd_batch([8] * 12, seed=3)
        server = BatchServer(
            Device(), policy="fifo", max_batch=2, max_wait=1e-4,
            queue_limit=3, admission="block",
        )
        server.start()
        futures = []

        def producer():
            futures.extend(server.submit_many(matrices))

        t = threading.Thread(target=producer)
        t.start()
        t.join(timeout=10.0)
        assert not t.is_alive()
        assert all(f.result(timeout=5.0).ok for f in futures)
        assert server.metrics.submitted == 12
        server.shutdown()

    def test_blocked_submitter_unblocks_on_shutdown(self):
        server = BatchServer(Device(), queue_limit=1, admission="block")
        server.submit(np.eye(4))
        errors = []

        def blocked():
            try:
                server.submit(np.eye(4))
            except AdmissionError as exc:
                errors.append(exc)

        t = threading.Thread(target=blocked)
        t.start()
        server.shutdown(drain=False)
        t.join(timeout=5.0)
        assert not t.is_alive() and len(errors) == 1


class TestDeadlinesAndMetrics:
    def test_deadline_pressure_flushes_and_misses_are_counted(self):
        t = [0.0]
        server = BatchServer(
            Device(execute_numerics=False),
            policy="fifo", max_batch=64, max_wait=60.0,
            clock=lambda: t[0],
        )
        fut = server.submit(np.zeros((16, 16)), deadline=1.0)
        assert server.pump() == 0  # deadline still ahead, window open
        t[0] = 10.0
        assert server.pump() == 1  # deadline passed: flush without force
        resp = fut.result(timeout=1.0)
        assert resp.deadline_missed  # served late, never dropped
        assert server.metrics.deadline_misses == 1

    def test_timing_mode_reports_no_payloads_but_full_metrics(self):
        server = BatchServer(
            Device(execute_numerics=False), policy="fifo", max_batch=4,
            plan_cache=PlanCache(),
        )
        sizes = [32, 32, 32, 32] * 3
        responses = closed_loop(
            server, [np.zeros((n, n)) for n in sizes], concurrency=4
        )
        assert all(r.ok and r.factor is None and r.solution is None for r in responses)
        assert all(r.latency_sim > 0 for r in responses)
        # identical 4x32 batches: the second and third launches re-serve
        # the plan the first one built
        assert server.metrics.launch_stats.plan_cache_misses == 1
        assert server.metrics.launch_stats.plan_cache_hits == 2
        server.shutdown()
        snap = server.metrics.snapshot()
        assert snap["requests"]["completed"] == 12
        assert snap["throughput"]["batches"] == 3
        assert snap["batch_size_histogram"] == {"4": 3}
        assert snap["batching"]["efficiency"] == 1.0
        assert snap["plan_cache"] == {"hits": 2, "misses": 1}
        assert snap["latency_sim_s"]["p99"] >= snap["latency_sim_s"]["p50"] > 0

    def test_device_memory_is_returned_after_every_batch(self):
        device = Device(execute_numerics=False)
        server = BatchServer(device, policy="fifo", max_batch=8, plan_cache=PlanCache())
        baseline = device.memory.used
        server.submit_many([np.zeros((48, 48)) for _ in range(8)])
        server.pump(force=True)
        resident = device.memory.used  # the one cached plan's footprint
        for _ in range(4):
            server.submit_many([np.zeros((48, 48)) for _ in range(8)])
            server.pump(force=True)
            assert device.memory.used == resident  # steady state: no growth
        server.shutdown()
        assert server.plan_cache.evict(device=device) == 1
        device.pool.trim()  # plan workspaces parked in the pool
        assert device.memory.used == baseline  # eviction returns it all

    def test_batching_efficiency_tracks_size_spread(self):
        server = BatchServer(Device(execute_numerics=False), policy="fifo", max_batch=2)
        server.submit_many([np.zeros((8, 8)), np.zeros((64, 64))])
        server.pump(force=True)
        snap = server.metrics.snapshot()
        assert 0.0 < snap["batching"]["efficiency"] < 0.6  # heavy padding waste


class TestMetricsExposition:
    """The registry-backed ServerMetrics renders Prometheus text."""

    def test_expose_covers_requests_latency_and_driver(self):
        server = BatchServer(Device(execute_numerics=False), policy="fifo", max_batch=4)
        server.submit_many([np.zeros((16, 16)) for _ in range(4)])
        server.pump(force=True)
        server.shutdown()
        text = server.metrics.expose()
        assert 'serving_requests_total{outcome="completed"} 4' in text
        assert 'serving_requests_total{outcome="submitted"} 4' in text
        assert "# TYPE serving_latency_seconds summary" in text
        assert 'serving_latency_seconds{clock="sim",quantile="0.5"}' in text
        assert "serving_batch_size_bucket" in text
        # LaunchStats rides along under its own prefix.
        assert "serving_driver_executed_launches" in text

    def test_shared_registry_can_be_injected(self):
        from repro.observability import MetricsRegistry
        from repro.serving.metrics import ServerMetrics

        registry = MetricsRegistry()
        metrics = ServerMetrics(registry=registry)
        metrics.record_submit(queue_depth=1)
        assert metrics.registry is registry
        assert registry.counter(
            "serving_requests_total", labels=("outcome",)
        ).value(outcome="submitted") == 1
