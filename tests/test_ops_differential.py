"""Differential tests: planner-path factorizations vs numpy/scipy.

Every plannable op runs through its planner (``run_op_vbatched`` /
the extension wrappers) on a numerics-on device and is checked against
the reference dense library on the same inputs — across precisions and
ragged size distributions.  The hypothesis block fuzzes the size
vectors; the parametrized block pins the precision sweep.
"""

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings, strategies as st

from repro import distributions as dist
from repro.core.batch import VBatch
from repro.device import Device
from repro.extensions import geqrf_vbatched, gesvj_vbatched, getrf_vbatched
from repro.hostblas import build_q

_RTOL = {"s": 2e-4, "d": 1e-10, "c": 2e-4, "z": 1e-10}
_DTYPE = {"s": np.float32, "d": np.float64, "c": np.complex64, "z": np.complex128}


def _random_matrices(sizes, prec, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for n in sizes:
        a = rng.standard_normal((n, n))
        if prec in "cz":
            a = a + 1j * rng.standard_normal((n, n))
        out.append(np.ascontiguousarray(a.astype(_DTYPE[prec])))
    return out


def _run(op_fn, matrices, prec, **kw):
    dev = Device()
    batch = VBatch.from_host(dev, matrices)
    result = op_fn(dev, batch, max_n=max(m.shape[0] for m in matrices), **kw)
    factors = batch.download_matrices()
    batch.free()
    return result, factors


class TestGeqrfDifferential:
    @pytest.mark.parametrize("prec", ["s", "d", "c", "z"])
    def test_r_matches_numpy_qr(self, prec):
        sizes = [24, 17, 9, 33, 2]
        mats = _random_matrices(sizes, prec, seed=1)
        result, factors = _run(geqrf_vbatched, mats, prec)
        for i, (a, f) in enumerate(zip(mats, factors)):
            n = a.shape[0]
            r_ours = np.triu(f[:n, :n])
            _, r_ref = np.linalg.qr(a)
            # QR is unique up to column signs of Q / row phases of R.
            scale = np.where(np.abs(np.diag(r_ref)) > 0,
                             np.diag(r_ours) / np.diag(r_ref), 1.0)
            assert np.allclose(r_ours, scale[:, None] * r_ref,
                               rtol=_RTOL[prec], atol=_RTOL[prec]), f"matrix {i}"

    @pytest.mark.parametrize("prec", ["s", "d"])
    def test_q_r_reconstructs_input(self, prec):
        sizes = [31, 8, 20]
        mats = _random_matrices(sizes, prec, seed=2)
        result, factors = _run(geqrf_vbatched, mats, prec)
        for i, (a, f) in enumerate(zip(mats, factors)):
            n = a.shape[0]
            q = build_q(f[:n, :n], result.taus[i, :n])
            assert np.allclose(q @ np.triu(f[:n, :n]), a,
                               rtol=_RTOL[prec], atol=_RTOL[prec] * n)


class TestGetrfDifferential:
    @pytest.mark.parametrize("prec", ["s", "d"])
    def test_matches_scipy_lu_factor(self, prec):
        sizes = [19, 30, 5, 12]
        mats = _random_matrices(sizes, prec, seed=3)
        result, factors = _run(getrf_vbatched, mats, prec)
        for i, (a, f) in enumerate(zip(mats, factors)):
            n = a.shape[0]
            lu_ref, piv_ref = scipy.linalg.lu_factor(a)
            assert np.allclose(f[:n, :n], lu_ref,
                               rtol=_RTOL[prec], atol=_RTOL[prec] * n), f"matrix {i}"
            # Ours are 1-based pivot rows; scipy's are 0-based.
            assert np.array_equal(result.ipivs[i, :n] - 1, piv_ref)
            assert result.infos[i] == 0

    @pytest.mark.parametrize("prec", ["c", "z"])
    def test_complex_lu_reconstructs(self, prec):
        """Complex pivot magnitude conventions may legitimately differ
        from the reference LAPACK, so assert P L U = A instead."""
        sizes = [13, 21]
        mats = _random_matrices(sizes, prec, seed=3)
        result, factors = _run(getrf_vbatched, mats, prec)
        for i, (a, f) in enumerate(zip(mats, factors)):
            n = a.shape[0]
            lu = f[:n, :n]
            l = np.tril(lu, -1) + np.eye(n, dtype=lu.dtype)
            rebuilt = l @ np.triu(lu)
            for k in reversed(range(n)):
                p = int(result.ipivs[i, k]) - 1
                if p != k:
                    rebuilt[[k, p]] = rebuilt[[p, k]]
            assert np.allclose(rebuilt, a, rtol=_RTOL[prec], atol=_RTOL[prec] * n)
            assert result.infos[i] == 0


class TestGesvjDifferential:
    @pytest.mark.parametrize("prec", ["s", "d"])
    def test_singular_values_match_numpy(self, prec):
        sizes = [22, 7, 15]
        mats = _random_matrices(sizes, prec, seed=4)
        result, factors = _run(gesvj_vbatched, mats, prec)
        for i, a in enumerate(mats):
            n = a.shape[0]
            sigma = result.singular_values[i, :n]
            ref = np.linalg.svd(a, compute_uv=False)
            assert np.all(np.diff(sigma) <= 1e-12 * max(sigma[0], 1.0))
            assert np.allclose(sigma, ref, rtol=50 * _RTOL[prec],
                               atol=50 * _RTOL[prec] * sigma[0])

    def test_full_decomposition_reconstructs(self):
        sizes = [18, 11]
        mats = _random_matrices(sizes, "d", seed=5)
        result, factors = _run(gesvj_vbatched, mats, "d")
        for i, (a, u) in enumerate(zip(mats, factors)):
            n = a.shape[0]
            sigma = result.singular_values[i, :n]
            vt = result.vt[i]
            rebuilt = u[:n, :n] @ (sigma[:, None] * vt)
            assert np.allclose(rebuilt, a, rtol=1e-8, atol=1e-8 * n)
            # U and V orthogonal.
            assert np.allclose(u[:n, :n].T @ u[:n, :n], np.eye(n), atol=1e-8)
            assert np.allclose(vt @ vt.T, np.eye(n), atol=1e-8)


@settings(max_examples=12, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=48), min_size=1, max_size=8),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_ragged_geqrf_and_getrf_reconstruct(sizes, seed):
    """Fuzzed ragged batches: QR and LU must reproduce their inputs."""
    mats = _random_matrices(sizes, "d", seed=seed)
    qr_result, qr_factors = _run(geqrf_vbatched, mats, "d")
    lu_result, lu_factors = _run(getrf_vbatched, mats, "d")
    for i, a in enumerate(mats):
        n = a.shape[0]
        q = build_q(qr_factors[i][:n, :n], qr_result.taus[i, :n])
        assert np.allclose(q @ np.triu(qr_factors[i][:n, :n]), a, atol=1e-9 * max(n, 4))
        lu = lu_factors[i][:n, :n]
        l = np.tril(lu, -1) + np.eye(n)
        u = np.triu(lu)
        rebuilt = l @ u
        # Undo the row swaps getrf applied (1-based pivot rows).
        for k in reversed(range(n)):
            p = int(lu_result.ipivs[i, k]) - 1
            if p != k:
                rebuilt[[k, p]] = rebuilt[[p, k]]
        assert np.allclose(rebuilt, a, atol=1e-9 * max(n, 4))


@settings(max_examples=6, deadline=None)
@given(
    dist_name=st.sampled_from(["uniform", "bimodal", "exponential"]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_distribution_sampled_svd_values(dist_name, seed):
    """Singular values stay right across the paper's size distributions."""
    sizes = dist.generate_sizes(dist_name, 6, 40, seed=seed)
    sizes = np.maximum(sizes, 1)
    mats = _random_matrices([int(n) for n in sizes], "d", seed=seed + 1)
    result, _ = _run(gesvj_vbatched, mats, "d")
    for i, a in enumerate(mats):
        n = a.shape[0]
        ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(result.singular_values[i, :n], ref,
                           rtol=1e-8, atol=1e-8 * max(ref[0], 1.0))
