"""Fleet router end-to-end tests (repro.serving.router / .fleet).

The router's contract: every admitted request terminates (response or
typed error, never a hang), higher SLO classes dispatch first, tenants
share within a class by weight, overload sheds the bottom classes, and
cancellation/timeouts propagate through every stage.  All sync-mode
tests run on a virtual clock, so ordering assertions are deterministic.
"""

import numpy as np
import pytest

from repro import make_spd_batch
from repro.core import PlanCache
from repro.errors import (
    AdmissionError,
    ArgumentError,
    DeadlineUnmeetableError,
    OverloadShedError,
    QuotaExceededError,
    RequestCancelled,
)
from repro.serving import (
    ARRIVAL_PATTERNS,
    FaultInjector,
    FleetRouter,
    RetryPolicy,
    VirtualClock,
    arrival_trace,
    build_fleet,
    open_loop,
)
from repro.serving.loadgen import WorkItem


def _router(**kw):
    kw.setdefault("replica_count", 2)
    kw.setdefault("max_batch", 8)
    kw.setdefault("execute_numerics", False)
    return FleetRouter(**kw)


def _mats(k, n=16):
    return [np.zeros((n, n)) for _ in range(k)]


class TestBuildFleet:
    def test_validation(self):
        with pytest.raises(ArgumentError, match="replica_count"):
            build_fleet(0)
        with pytest.raises(ArgumentError, match="devices_per_replica"):
            build_fleet(1, devices_per_replica=0)

    def test_replicas_share_one_plan_cache_and_get_unique_names(self):
        cache = PlanCache(max_plans=8)
        replicas = build_fleet(3, plan_cache=cache, name="f")
        assert [r.name for r in replicas] == ["f:r0", "f:r1", "f:r2"]
        assert all(r.server.plan_cache is cache for r in replicas)
        assert len({id(r.server) for r in replicas}) == 3

    def test_router_validation(self):
        with pytest.raises(ArgumentError, match="queue_limit"):
            _router(queue_limit=0)
        with pytest.raises(ArgumentError, match="default_slo"):
            _router(default_slo="platinum")
        with pytest.raises(ArgumentError, match="at least one replica"):
            FleetRouter(replicas=[])
        router = _router()
        with pytest.raises(ArgumentError, match="unknown slo"):
            router.submit(np.zeros((8, 8)), slo="platinum")
        with pytest.raises(ArgumentError, match="weight"):
            router.set_tenant("t", weight=0.0)
        router.shutdown()


class TestNumerics:
    def test_fleet_factors_match_cholesky(self):
        matrices = make_spd_batch([24, 7, 16, 33, 12], seed=2)
        router = FleetRouter(replica_count=2, max_batch=4, execute_numerics=True)
        tickets = [router.submit(m) for m in matrices]
        assert router.drain()
        router.shutdown()
        for m, t in zip(matrices, tickets):
            resp = t.future.result(timeout=0)
            assert resp.ok and t.outcome == "completed"
            # LAPACK convention: only the lower triangle is the factor.
            assert np.allclose(np.tril(resp.factor), np.linalg.cholesky(m))


class TestSchedulingOrder:
    def test_interactive_dispatches_before_earlier_batch_work(self):
        clock = VirtualClock()
        router = _router(replica_count=1, clock=clock)
        later = router.submit(np.zeros((16, 16)), slo="interactive", deadline=10.0)
        sooner = [router.submit(m, slo="batch") for m in _mats(3)]
        assert router._next_ticket_for_dispatch(clock()) is later
        assert router._next_ticket_for_dispatch(clock()) is sooner[0]
        router.shutdown(drain=False)

    def test_weighted_fair_share_within_a_class(self):
        clock = VirtualClock()
        router = _router(replica_count=1, clock=clock)
        router.set_tenant("heavy", weight=4.0)
        router.set_tenant("light", weight=1.0)
        for tenant in ("heavy", "light"):
            for m in _mats(8):
                router.submit(m, tenant=tenant, slo="batch")
        first5 = [router._next_ticket_for_dispatch(clock()).tenant for _ in range(5)]
        # Equal-cost backlog: virtual start tags give weight-4 four pops
        # for every one the weight-1 tenant gets.
        assert first5.count("heavy") == 4 and first5.count("light") == 1
        router.shutdown(drain=False)

    def test_backlogged_light_tenant_is_never_starved(self):
        clock = VirtualClock()
        router = _router(replica_count=1, clock=clock)
        router.set_tenant("heavy", weight=100.0)
        for m in _mats(50):
            router.submit(m, tenant="heavy", slo="batch")
        router.submit(np.zeros((16, 16)), tenant="light", slo="batch")
        popped = [router._next_ticket_for_dispatch(clock()).tenant for _ in range(51)]
        assert "light" in popped
        router.shutdown(drain=False)


class TestAdmission:
    def test_quota_bounds_outstanding_and_releases_on_completion(self):
        router = _router(replica_count=1)
        router.set_tenant("capped", quota=2)
        for m in _mats(2):
            router.submit(m, tenant="capped")
        with pytest.raises(QuotaExceededError):
            router.submit(np.zeros((16, 16)), tenant="capped")
        assert router.metrics.outcome("rejected_quota", tenant="capped") == 1
        assert router.drain()
        ticket = router.submit(np.zeros((16, 16)), tenant="capped")
        assert router.drain() and ticket.outcome == "completed"
        router.shutdown()

    def test_shed_levels_protect_higher_classes(self):
        clock = VirtualClock()
        router = _router(replica_count=1, queue_limit=10, clock=clock)
        for m in _mats(5):
            router.submit(m, slo="batch")
        # Depth 5 = best-effort shed level (0.5 x 10) but not batch's.
        with pytest.raises(OverloadShedError):
            router.submit(np.zeros((16, 16)), slo="best-effort")
        router.submit(np.zeros((16, 16)), slo="batch")
        for m in _mats(4):
            router.submit(m, slo="interactive", deadline=100.0)
        with pytest.raises(AdmissionError, match="backlog full"):
            router.submit(np.zeros((16, 16)), slo="interactive", deadline=100.0)
        snap = router.metrics.snapshot()
        assert snap["requests"]["shed"] == 1
        assert router.metrics.outcome("rejected_full", slo="interactive") == 1
        router.shutdown(drain=False)

    def test_shed_disabled_admits_best_effort_to_the_hard_limit(self):
        clock = VirtualClock()
        router = _router(replica_count=1, queue_limit=10, shed=False, clock=clock)
        for m in _mats(9):
            router.submit(m, slo="best-effort")
        router.submit(np.zeros((16, 16)), slo="best-effort")
        with pytest.raises(AdmissionError):
            router.submit(np.zeros((16, 16)), slo="best-effort")
        router.shutdown(drain=False)

    def test_deadline_aware_admission_refuses_doomed_requests(self):
        clock = VirtualClock()
        router = _router(replica_count=1, clock=clock)
        router.submit(np.zeros((16, 16)), slo="interactive", deadline=100.0)
        router._service_ema = 1.0  # pretend each request takes 1 sim-second
        with pytest.raises(DeadlineUnmeetableError) as err:
            router.submit(np.zeros((16, 16)), slo="interactive", deadline=0.1)
        assert err.value.estimate > 2 * 0.1
        # A roomy deadline sails through the same backlog.
        router.submit(np.zeros((16, 16)), slo="interactive", deadline=100.0)
        assert router.metrics.outcome("rejected_deadline") == 1
        router.shutdown(drain=False)


class TestCancellation:
    def test_cancel_queued_ticket_resolves_immediately(self):
        clock = VirtualClock()
        router = _router(replica_count=1, clock=clock)
        ticket = router.submit(np.zeros((16, 16)))
        assert router.cancel(ticket) is True
        assert ticket.outcome == "cancelled"
        with pytest.raises(RequestCancelled):
            ticket.future.result(timeout=0)
        assert router.cancel(ticket) is False  # already terminal
        assert router.pending == 0
        router.pump(clock())  # lazy queue prune
        assert router.idle()
        router.shutdown(drain=False)

    def test_cancel_forwarded_ticket_pulls_it_from_the_batcher(self):
        clock = VirtualClock()
        router = _router(replica_count=1, clock=clock)
        ticket = router.submit(np.zeros((16, 16)))
        replica = router.replicas[0]
        router._feed(replica, clock())  # forwarded, not yet launched
        assert replica.server.queue_depth == 1
        assert router.cancel(ticket) is True
        assert ticket.outcome == "cancelled" and replica.server.queue_depth == 0
        with pytest.raises(RequestCancelled):
            ticket.future.result(timeout=0)
        assert router.idle()
        router.shutdown(drain=False)

    def test_hard_timeout_expires_queued_work(self):
        clock = VirtualClock()
        router = _router(replica_count=1, clock=clock)
        doomed = router.submit(np.zeros((16, 16)), timeout=0.5)
        clock.t = 1.0
        router.pump(clock())
        assert doomed.outcome == "cancelled"
        with pytest.raises(RequestCancelled, match="timeout"):
            doomed.future.result(timeout=0)
        assert router.metrics.outcome("cancelled") == 1
        router.shutdown(drain=False)


class TestFaultsAndHealth:
    def test_retry_lands_on_a_healthy_replica_and_stats_stay_logical(self):
        injector = FaultInjector(rate=1.0, kinds=("shard-failure",), seed=5, max_faults=1)
        router = _router(
            replica_count=2,
            fault_injector=injector,
            retry=RetryPolicy(max_retries=2, backoff=1e-4),
        )
        tickets = [router.submit(m) for m in _mats(8)]
        assert router.drain()
        router.shutdown()
        assert all(t.outcome == "completed" for t in tickets)
        assert injector.injected("shard-failure") == 1
        snap = router.metrics.snapshot()
        assert snap["retries"].get("PlanExecutionError", 0) == 8
        # One logical batch, two dispatch attempts: the keyed merge must
        # count it once.
        assert snap["launch_stats"]["batches"] == 1
        # The retry ran on the other replica (exclude on first re-dispatch).
        faulted = {t.replica.name for t in tickets}
        assert len(faulted) == 1

    def test_ejected_replica_takes_no_traffic(self):
        router = _router(replica_count=2)
        router.replicas[0].health.ejected_until = float("inf")
        tickets = [router.submit(m) for m in _mats(12)]
        assert router.drain()
        router.shutdown()
        assert all(t.outcome == "completed" for t in tickets)
        assert router.replicas[0].dispatches == 0
        assert router.replicas[1].dispatches > 0

    def test_stalls_complete_but_pay_their_surcharge(self):
        clock = VirtualClock()
        injector = FaultInjector(rate=1.0, kinds=("stall",), seed=0, stall_s=2.0)
        router = _router(replica_count=1, fault_injector=injector, clock=clock)
        ticket = router.submit(np.zeros((16, 16)))
        assert router.drain()
        router.shutdown()
        assert ticket.outcome == "completed"
        assert ticket.completed_at - ticket.arrival >= 2.0

    def test_consecutive_faults_eject_and_metrics_record_it(self):
        injector = FaultInjector(rate=1.0, kinds=("device-oom",), seed=0)
        router = _router(
            replica_count=1,
            fault_injector=injector,
            retry=RetryPolicy(max_retries=3, backoff=1e-4),
            health_cooldown=1e-3,
        )
        ticket = router.submit(np.zeros((16, 16)))
        assert router.drain()
        router.shutdown()
        assert ticket.outcome == "failed"
        assert router.replicas[0].health.ejections >= 1
        snap = router.snapshot()
        assert snap["replicas"][0]["ejections"] >= 1
        assert snap["classes"]["batch"]["outcomes"]["failed"] == 1


class TestThreadedMode:
    def test_threaded_fleet_serves_and_drains(self):
        router = FleetRouter(replica_count=2, max_batch=4, max_wait=1e-3)
        router.start()
        tickets = [router.submit(m) for m in make_spd_batch([12, 8, 20, 9, 16, 8], seed=4)]
        responses = [t.future.result(timeout=10.0) for t in tickets]
        assert all(r.ok for r in responses)
        router.shutdown()
        assert all(t.outcome == "completed" for t in tickets)

    def test_threaded_retry_recovers_from_a_seeded_fault(self):
        injector = FaultInjector(rate=0.3, kinds=("device-oom",), seed=11, max_faults=2)
        router = FleetRouter(
            replica_count=2,
            max_batch=4,
            max_wait=1e-3,
            execute_numerics=False,
            fault_injector=injector,
            retry=RetryPolicy(max_retries=3, backoff=1e-4),
        )
        router.start()
        tickets = [router.submit(m) for m in _mats(16)]
        for t in tickets:
            t.future.result(timeout=10.0)
        router.shutdown()
        assert all(t.outcome == "completed" for t in tickets)


class TestShutdown:
    def test_non_drain_shutdown_cancels_the_backlog(self):
        clock = VirtualClock()
        router = _router(replica_count=1, clock=clock)
        tickets = [router.submit(m) for m in _mats(4)]
        router.shutdown(drain=False)
        assert all(t.outcome == "cancelled" for t in tickets)
        with pytest.raises(AdmissionError):
            router.submit(np.zeros((16, 16)))

    def test_context_manager_drains_on_clean_exit(self):
        with _router(replica_count=1) as router:
            ticket = router.submit(np.zeros((16, 16)))
        assert ticket.outcome == "completed"


class TestOpenLoop:
    def test_arrival_traces_are_seed_deterministic_and_increasing(self):
        for pattern in ARRIVAL_PATTERNS:
            a = arrival_trace(pattern, 64, rate=100.0, seed=9)
            b = arrival_trace(pattern, 64, rate=100.0, seed=9)
            assert np.array_equal(a, b)
            assert len(a) == 64 and np.all(np.diff(a) >= 0)
            assert not np.array_equal(a, arrival_trace(pattern, 64, rate=100.0, seed=10))
        with pytest.raises(ArgumentError, match="pattern"):
            arrival_trace("constant", 8, rate=1.0)

    def test_patterns_draw_distinct_streams(self):
        traces = [arrival_trace(p, 32, rate=50.0, seed=0) for p in ARRIVAL_PATTERNS]
        for i in range(len(traces)):
            for j in range(i + 1, len(traces)):
                assert not np.array_equal(traces[i], traces[j])

    def test_open_loop_serves_everything_and_reports_refusals(self):
        clock = VirtualClock()
        router = _router(replica_count=2, queue_limit=64, clock=clock)
        items = [
            WorkItem(at=i * 1e-3, matrix=np.zeros((16, 16)), tenant="t", slo="batch")
            for i in range(20)
        ]
        pairs = open_loop(router, items, clock)
        router.shutdown(drain=True)
        assert len(pairs) == 20
        assert all(not isinstance(out, AdmissionError) for _, out in pairs)
        assert all(out.outcome == "completed" for _, out in pairs)
        # Virtual time advanced past the last arrival.
        assert clock() >= items[-1].at
