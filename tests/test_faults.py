"""Fault injection, retry policy, replica health (repro.serving.faults).

Determinism is the contract under test: the injector's schedule must be
a pure function of ``(seed, server, batch_id)``, because the chaos CI
job replays it and asserts the fleet loses nothing.  The matrix test at
the bottom pins the documented terminal state for every fault kind
crossed with every retry stance.
"""

import numpy as np
import pytest

from repro.errors import (
    ArgumentError,
    BatchNumericalError,
    DeviceOutOfMemory,
    PlanExecutionError,
    RetriesExhaustedError,
)
from repro.serving import FAULT_KINDS, FaultInjector, FleetRouter, ReplicaHealth, RetryPolicy


class TestFaultInjectorDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultInjector(rate=0.3, seed=42)
        b = FaultInjector(rate=0.3, seed=42)
        grid = [(f"r{i}", j) for i in range(4) for j in range(50)]
        assert [a.peek(s, k) for s, k in grid] == [b.peek(s, k) for s, k in grid]

    def test_different_seeds_diverge(self):
        a = FaultInjector(rate=0.3, seed=1)
        b = FaultInjector(rate=0.3, seed=2)
        grid = [("r0", j) for j in range(200)]
        assert [a.peek(s, k) for s, k in grid] != [b.peek(s, k) for s, k in grid]

    def test_replicas_fault_independently(self):
        inj = FaultInjector(rate=0.5, seed=7)
        per_server = [
            [inj.peek(name, j) for j in range(100)] for name in ("fleet:r0", "fleet:r1")
        ]
        assert per_server[0] != per_server[1]

    def test_peek_matches_on_dispatch(self):
        inj = FaultInjector(rate=1.0, kinds=("stall",), seed=0, stall_s=0.25)
        assert inj.peek("s", 3) == "stall"
        assert inj.on_dispatch("s", 3, [8, 8]) == 0.25
        assert inj.injected("stall") == 1
        assert inj.events[0].batch_size == 2

    def test_rate_zero_never_fires(self):
        inj = FaultInjector(rate=0.0, seed=0)
        assert all(inj.peek("s", j) is None for j in range(100))
        assert inj.on_dispatch("s", 0, [4]) == 0.0
        assert inj.injected() == 0


class TestFaultInjectorBehaviour:
    def test_device_oom_raises_typed_error(self):
        inj = FaultInjector(rate=1.0, kinds=("device-oom",), seed=0)
        with pytest.raises(DeviceOutOfMemory):
            inj.on_dispatch("s", 0, [16, 16])

    def test_shard_failure_carries_plan_index_and_device(self):
        inj = FaultInjector(rate=1.0, kinds=("shard-failure",), seed=0)
        with pytest.raises(PlanExecutionError) as err:
            inj.on_dispatch("fleet:r1", 5, [16, 16, 16])
        assert 0 <= err.value.plan_index < 3
        assert err.value.device_name.startswith("fleet:r1:dev")

    def test_max_faults_caps_the_schedule(self):
        inj = FaultInjector(rate=1.0, kinds=("stall",), seed=0, max_faults=2, stall_s=0.1)
        stalls = [inj.on_dispatch("s", j, [4]) for j in range(10)]
        assert stalls.count(0.1) == 2 and inj.injected() == 2

    def test_validation(self):
        with pytest.raises(ArgumentError):
            FaultInjector(rate=1.5)
        with pytest.raises(ArgumentError):
            FaultInjector(kinds=("nope",))
        with pytest.raises(ArgumentError):
            FaultInjector(kinds=())
        with pytest.raises(ArgumentError):
            FaultInjector(stall_s=-1.0)


class TestRetryPolicy:
    def test_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.retryable(DeviceOutOfMemory(10, 0, 5))
        assert policy.retryable(PlanExecutionError(0, "d", ValueError("x")))
        assert not policy.retryable(ArgumentError(1, "bad"))
        assert not policy.retryable(BatchNumericalError({0: 3}, "potrf"))

    def test_delay_grows_exponentially(self):
        policy = RetryPolicy(backoff=1e-3, backoff_factor=2.0)
        assert policy.delay(1) == pytest.approx(1e-3)
        assert policy.delay(2) == pytest.approx(2e-3)
        assert policy.delay(3) == pytest.approx(4e-3)

    def test_validation(self):
        with pytest.raises(ArgumentError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ArgumentError):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ArgumentError):
            RetryPolicy(backoff_factor=0.5)


class TestReplicaHealth:
    def test_threshold_ejects_and_cooldown_recovers(self):
        health = ReplicaHealth(failure_threshold=2, cooldown=1.0)
        assert not health.record_failure(now=0.0)
        assert health.healthy(0.0)
        assert health.record_failure(now=0.0)  # second consecutive -> eject
        assert not health.healthy(0.5)
        assert health.healthy(1.0)  # half-open after the cooldown
        assert health.ejections == 1 and health.failures == 2

    def test_success_closes_the_breaker(self):
        health = ReplicaHealth(failure_threshold=2, cooldown=1.0)
        health.record_failure(0.0)
        health.record_success()
        assert not health.record_failure(0.0)  # streak reset: not ejected

    def test_slow_dispatches_trip_the_same_breaker(self):
        health = ReplicaHealth(failure_threshold=2, cooldown=1.0)
        health.record_slow(0.0)
        assert health.record_slow(0.0)
        assert health.slow_dispatches == 2 and not health.healthy(0.5)


class TestFaultRetryMatrix:
    """Fault kind x retry stance -> documented terminal state.

    With ``max_faults=1`` the injector fires exactly once, so a policy
    with retry budget always lands the retry on a clean dispatch and the
    request completes; without a budget, raising kinds must terminate in
    :class:`RetriesExhaustedError` after exactly one attempt.  ``stall``
    never raises, so it completes under every policy.
    """

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    @pytest.mark.parametrize("retries", [0, 3])
    def test_terminal_state(self, kind, retries):
        injector = FaultInjector(rate=1.0, kinds=(kind,), seed=3, max_faults=1)
        router = FleetRouter(
            replica_count=2,
            max_batch=4,
            fault_injector=injector,
            retry=RetryPolicy(max_retries=retries, backoff=1e-4),
            execute_numerics=False,
        )
        tickets = [router.submit(np.zeros((16, 16))) for _ in range(4)]
        assert router.drain()
        router.shutdown()
        assert injector.injected(kind) == 1
        raising = kind in ("device-oom", "shard-failure")
        if not raising or retries > 0:
            # Stalls never fail a batch; raising faults retry cleanly.
            assert all(t.outcome == "completed" for t in tickets)
        else:
            # No retry budget: the faulted batch terminates typed, never hangs.
            assert all(t.outcome == "failed" for t in tickets)
            for t in tickets:
                with pytest.raises(RetriesExhaustedError) as err:
                    t.future.result(timeout=0)
                assert err.value.attempts == 1

    def test_exhausted_retries_chain_the_last_fault(self):
        # Unlimited schedule on a single replica: every attempt faults.
        injector = FaultInjector(rate=1.0, kinds=("device-oom",), seed=0)
        router = FleetRouter(
            replica_count=1,
            max_batch=4,
            fault_injector=injector,
            retry=RetryPolicy(max_retries=2, backoff=1e-4),
            execute_numerics=False,
        )
        ticket = router.submit(np.zeros((16, 16)))
        assert router.drain()
        router.shutdown()
        assert ticket.outcome == "failed"
        with pytest.raises(RetriesExhaustedError) as err:
            ticket.future.result(timeout=0)
        assert err.value.attempts == 3  # 1 try + 2 retries
        assert isinstance(err.value.last_error, DeviceOutOfMemory)
        assert router.metrics.outcome("failed") == 1
