"""Tests for the from-scratch host BLAS (repro.hostblas) against SciPy."""

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings, strategies as st

from repro.errors import ArgumentError
from repro.hostblas import (
    cholesky_residual,
    gemm,
    lower_triangular_error,
    make_spd,
    make_spd_batch,
    potf2,
    potrf,
    syrk,
    trsm,
    trtri,
)

RNG = np.random.default_rng(42)


def random_matrix(m, n, dtype=np.float64, seed=None):
    rng = np.random.default_rng(seed if seed is not None else RNG.integers(1 << 31))
    a = rng.standard_normal((m, n))
    if np.dtype(dtype).kind == "c":
        a = a + 1j * rng.standard_normal((m, n))
    return a.astype(dtype)


def tol_for(dtype):
    dt = np.dtype(dtype)
    return 1e-4 if dt.itemsize <= 8 and dt.kind == "c" or dt == np.float32 else 1e-10


DTYPES = [np.float32, np.float64, np.complex64, np.complex128]


class TestGemm:
    @pytest.mark.parametrize("transa", ["n", "t", "c"])
    @pytest.mark.parametrize("transb", ["n", "t", "c"])
    def test_matches_numpy(self, transa, transb):
        m, n, k = 7, 5, 6
        a = random_matrix(*(k, m)[:: -1 if transa == "n" else 1], np.complex128, seed=1)
        b = random_matrix(*(n, k)[:: -1 if transb == "n" else 1], np.complex128, seed=2)
        c = random_matrix(m, n, np.complex128, seed=3)
        c0 = c.copy()

        def op(x, t):
            return x if t == "n" else x.T if t == "t" else x.conj().T

        expected = 1.5 * op(a, transa) @ op(b, transb) + 0.5 * c0
        gemm(transa, transb, 1.5, a, b, 0.5, c)
        np.testing.assert_allclose(c, expected, rtol=1e-12)

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_all_dtypes_beta_zero(self, dtype):
        a = random_matrix(4, 3, dtype, seed=4)
        b = random_matrix(3, 6, dtype, seed=5)
        c = np.full((4, 6), np.nan, dtype=dtype)
        gemm("n", "n", 1.0, a, b, 0.0, c)  # beta=0 must overwrite NaNs
        np.testing.assert_allclose(c, a @ b, rtol=1e-4)

    def test_beta_one_accumulates(self):
        a = random_matrix(4, 4, seed=6)
        b = random_matrix(4, 4, seed=7)
        c = np.eye(4)
        gemm("n", "n", 2.0, a, b, 1.0, c)
        np.testing.assert_allclose(c, 2 * a @ b + np.eye(4), rtol=1e-12)

    def test_zero_inner_dim_scales_c(self):
        a = np.empty((3, 0))
        b = np.empty((0, 2))
        c = np.ones((3, 2))
        gemm("n", "n", 1.0, a, b, 0.5, c)
        np.testing.assert_allclose(c, 0.5)

    def test_dimension_mismatch(self):
        with pytest.raises(ArgumentError) as ei:
            gemm("n", "n", 1.0, np.ones((2, 3)), np.ones((4, 2)), 0.0, np.ones((2, 2)))
        assert ei.value.info < 0

    def test_bad_trans_flag(self):
        with pytest.raises(ArgumentError):
            gemm("x", "n", 1.0, np.ones((2, 2)), np.ones((2, 2)), 0.0, np.ones((2, 2)))

    def test_bad_c_shape(self):
        with pytest.raises(ArgumentError):
            gemm("n", "n", 1.0, np.ones((2, 3)), np.ones((3, 4)), 0.0, np.ones((2, 5)))

    @given(
        m=st.integers(1, 12), n=st.integers(1, 12), k=st.integers(1, 12),
        alpha=st.floats(-2, 2), beta=st.floats(-2, 2),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_numpy(self, m, n, k, alpha, beta):
        rng = np.random.default_rng(m * 1000 + n * 100 + k)
        a, b = rng.standard_normal((m, k)), rng.standard_normal((k, n))
        c = rng.standard_normal((m, n))
        expected = alpha * a @ b + beta * c
        gemm("n", "n", alpha, a, b, beta, c)
        np.testing.assert_allclose(c, expected, atol=1e-10)


class TestSyrk:
    @pytest.mark.parametrize("uplo", ["l", "u"])
    @pytest.mark.parametrize("trans", ["n", "t"])
    def test_triangle_correct(self, uplo, trans):
        n, k = 6, 4
        a = random_matrix(n, k, seed=8) if trans == "n" else random_matrix(k, n, seed=8)
        c = random_matrix(n, n, seed=9)
        c0 = c.copy()
        full = (a @ a.T) if trans == "n" else (a.T @ a)
        syrk(uplo, trans, 2.0, a, 1.0, c)
        mask = np.tril(np.ones((n, n), bool)) if uplo == "l" else np.triu(np.ones((n, n), bool))
        np.testing.assert_allclose(c[mask], (2 * full + c0)[mask], rtol=1e-12)
        # Opposite triangle untouched:
        np.testing.assert_array_equal(c[~mask], c0[~mask])

    def test_hermitian_case(self):
        n, k = 5, 3
        a = random_matrix(n, k, np.complex128, seed=10)
        c = np.zeros((n, n), np.complex128)
        syrk("l", "n", 1.0, a, 0.0, c)
        full = a @ a.conj().T
        np.testing.assert_allclose(np.tril(c), np.tril(full), rtol=1e-12)

    def test_bad_uplo(self):
        with pytest.raises(ArgumentError):
            syrk("x", "n", 1.0, np.ones((2, 2)), 0.0, np.ones((2, 2)))

    def test_nonsquare_c(self):
        with pytest.raises(ArgumentError):
            syrk("l", "n", 1.0, np.ones((2, 2)), 0.0, np.ones((2, 3)))

    def test_row_mismatch(self):
        with pytest.raises(ArgumentError):
            syrk("l", "n", 1.0, np.ones((3, 2)), 0.0, np.ones((2, 2)))


class TestTrsm:
    @pytest.mark.parametrize("side", ["l", "r"])
    @pytest.mark.parametrize("uplo", ["l", "u"])
    @pytest.mark.parametrize("trans", ["n", "t", "c"])
    @pytest.mark.parametrize("diag", ["n", "u"])
    def test_all_option_combinations(self, side, uplo, trans, diag):
        rng = np.random.default_rng(11)
        na = 7
        m, n = (na, 4) if side == "l" else (4, na)
        a = rng.standard_normal((na, na)) + 1j * rng.standard_normal((na, na))
        a += na * np.eye(na)  # well conditioned
        tri = np.tril(a) if uplo == "l" else np.triu(a)
        if diag == "u":
            np.fill_diagonal(tri, 1.0)
        b = rng.standard_normal((m, n)) + 1j * rng.standard_normal((m, n))
        x = b.copy()
        trsm(side, uplo, trans, diag, 1.0, a, x, nb=3)

        opa = {"n": tri, "t": tri.T, "c": tri.conj().T}[trans]
        recon = opa @ x if side == "l" else x @ opa
        np.testing.assert_allclose(recon, b, rtol=1e-10, atol=1e-10)

    def test_alpha_scaling(self):
        a = np.eye(3)
        b = np.ones((3, 2))
        trsm("l", "l", "n", "n", 2.5, a, b)
        np.testing.assert_allclose(b, 2.5)

    def test_matches_scipy(self):
        rng = np.random.default_rng(12)
        a = np.tril(rng.standard_normal((9, 9))) + 9 * np.eye(9)
        b = rng.standard_normal((9, 5))
        x = b.copy()
        trsm("l", "l", "n", "n", 1.0, a, x, nb=4)
        np.testing.assert_allclose(x, sla.solve_triangular(a, b, lower=True), rtol=1e-10)

    def test_only_selected_triangle_read(self):
        """Garbage in the opposite triangle must not affect the result."""
        rng = np.random.default_rng(13)
        a = np.tril(rng.standard_normal((6, 6))) + 6 * np.eye(6)
        poisoned = a + np.triu(np.full((6, 6), np.nan), 1)
        b = rng.standard_normal((6, 3))
        x = b.copy()
        trsm("l", "l", "n", "n", 1.0, poisoned, x)
        assert np.isfinite(x).all()

    @pytest.mark.parametrize(
        "argdex,kwargs",
        [
            (1, dict(side="x")),
            (2, dict(uplo="x")),
            (3, dict(trans="x")),
            (4, dict(diag="x")),
        ],
    )
    def test_flag_validation(self, argdex, kwargs):
        base = dict(side="l", uplo="l", trans="n", diag="n")
        base.update(kwargs)
        with pytest.raises(ArgumentError) as ei:
            trsm(base["side"], base["uplo"], base["trans"], base["diag"], 1.0,
                 np.eye(2), np.ones((2, 2)))
        assert ei.value.argument_index == argdex

    def test_size_mismatch(self):
        with pytest.raises(ArgumentError):
            trsm("l", "l", "n", "n", 1.0, np.eye(3), np.ones((4, 2)))

    def test_empty_b(self):
        x = np.empty((3, 0))
        trsm("l", "l", "n", "n", 1.0, np.eye(3), x)
        assert x.shape == (3, 0)

    @given(n=st.integers(1, 16), nrhs=st.integers(1, 8), nb=st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_property_blocked_equals_scipy(self, n, nrhs, nb):
        rng = np.random.default_rng(n * 100 + nrhs)
        a = np.tril(rng.standard_normal((n, n))) + n * np.eye(n)
        b = rng.standard_normal((n, nrhs))
        x = b.copy()
        trsm("l", "l", "n", "n", 1.0, a, x, nb=nb)
        np.testing.assert_allclose(x, sla.solve_triangular(a, b, lower=True),
                                   rtol=1e-9, atol=1e-9)


class TestTrtri:
    @pytest.mark.parametrize("uplo", ["l", "u"])
    @pytest.mark.parametrize("diag", ["n", "u"])
    @pytest.mark.parametrize("n", [1, 2, 5, 17, 40])
    def test_inverse_correct(self, uplo, diag, n):
        rng = np.random.default_rng(n)
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        tri = np.tril(a) if uplo == "l" else np.triu(a)
        work = tri.copy()
        if diag == "u":
            explicit = tri.copy()
            np.fill_diagonal(explicit, 1.0)
        else:
            explicit = tri
        trtri(uplo, diag, work, nb=8)
        inv = np.tril(work) if uplo == "l" else np.triu(work)
        if diag == "u":
            np.fill_diagonal(inv, 1.0)
        np.testing.assert_allclose(inv @ explicit, np.eye(n), atol=1e-8)

    def test_complex(self):
        rng = np.random.default_rng(21)
        n = 9
        a = np.tril(rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n)))
        a += n * np.eye(n)
        work = a.copy()
        trtri("l", "n", work, nb=4)
        np.testing.assert_allclose(np.tril(work) @ a, np.eye(n), atol=1e-10)

    def test_singular_raises(self):
        a = np.tril(np.ones((3, 3)))
        a[1, 1] = 0.0
        with pytest.raises(ZeroDivisionError, match="info=2"):
            trtri("l", "n", a)

    def test_empty(self):
        a = np.empty((0, 0))
        assert trtri("l", "n", a).shape == (0, 0)

    def test_bad_flags(self):
        with pytest.raises(ArgumentError):
            trtri("x", "n", np.eye(2))
        with pytest.raises(ArgumentError):
            trtri("l", "x", np.eye(2))
        with pytest.raises(ArgumentError):
            trtri("l", "n", np.ones((2, 3)))


class TestPotf2AndPotrf:
    @pytest.mark.parametrize("fn", [potf2, potrf])
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 33, 65])
    def test_matches_scipy_lower(self, fn, n):
        a = make_spd(n, "d", seed=n)
        work = a.copy()
        assert fn(work) == 0
        expected = sla.cholesky(a, lower=True)
        assert lower_triangular_error(work, expected) < 1e-12

    @pytest.mark.parametrize("fn", [potf2, potrf])
    def test_upper(self, fn):
        a = make_spd(12, "d", seed=99)
        work = a.copy()
        assert fn(work, uplo="u") == 0
        expected = sla.cholesky(a, lower=False)
        np.testing.assert_allclose(np.triu(work), expected, rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("prec", ["s", "d", "c", "z"])
    def test_all_precisions_residual(self, prec):
        a = make_spd(20, prec, seed=5)
        work = a.copy()
        assert potrf(work, nb=7) == 0
        tol = 1e-5 if prec in ("s", "c") else 1e-13
        assert cholesky_residual(a, work) < tol

    def test_complex_upper_in_place(self):
        a = make_spd(10, "z", seed=31)
        work = a.copy()
        assert potrf(work, uplo="u", nb=4) == 0
        u = np.triu(work)
        np.testing.assert_allclose(u.conj().T @ u, a, rtol=1e-10, atol=1e-10)

    def test_non_spd_info_code(self):
        a = np.eye(5)
        a[3, 3] = -1.0
        work = a.copy()
        assert potf2(work) == 4
        assert potrf(a.copy(), nb=2) == 4

    def test_partial_factor_before_failure(self):
        """LAPACK contract: leading info-1 columns hold the partial factor."""
        a = make_spd(6, "d", seed=77)
        a[4, 4] = -50.0
        a[5, 4] = a[4, 5] = 0.0
        work = a.copy()
        info = potrf(work, nb=2)
        assert info == 5
        ref = sla.cholesky(a[:4, :4], lower=True)
        np.testing.assert_allclose(np.tril(work[:4, :4]), ref, rtol=1e-10)

    def test_strict_upper_untouched(self):
        a = make_spd(11, "d", seed=13)
        sentinel = a.copy()
        sentinel[np.triu_indices(11, 1)] = -12345.0
        work = sentinel.copy()
        assert potrf(work, nb=4) == 0
        np.testing.assert_array_equal(
            work[np.triu_indices(11, 1)], sentinel[np.triu_indices(11, 1)]
        )

    @pytest.mark.parametrize("nb", [1, 2, 5, 8, 100])
    def test_blocked_independent_of_nb(self, nb):
        a = make_spd(23, "d", seed=50)
        ref = a.copy()
        assert potrf(ref, nb=3) == 0
        work = a.copy()
        assert potrf(work, nb=nb) == 0
        np.testing.assert_allclose(np.tril(work), np.tril(ref), rtol=1e-12)

    def test_empty_matrix(self):
        a = np.empty((0, 0))
        assert potrf(a) == 0

    def test_bad_args(self):
        with pytest.raises(ArgumentError):
            potrf(np.ones((2, 3)))
        with pytest.raises(ArgumentError):
            potrf(np.eye(2), uplo="q")
        with pytest.raises(ArgumentError):
            potrf(np.eye(2), nb=0)

    @given(n=st.integers(1, 40), nb=st.integers(1, 12))
    @settings(max_examples=30, deadline=None)
    def test_property_residual_small(self, n, nb):
        a = make_spd(n, "d", seed=n * 7 + nb)
        work = a.copy()
        assert potrf(work, nb=nb) == 0
        assert cholesky_residual(a, work) < 1e-13


class TestValidators:
    def test_make_spd_is_spd(self):
        a = make_spd(30, "d", seed=1)
        assert np.allclose(a, a.T)
        assert np.linalg.eigvalsh(a).min() > 0

    def test_make_spd_hermitian_complex(self):
        a = make_spd(15, "z", seed=2)
        np.testing.assert_allclose(a, a.conj().T)
        assert np.linalg.eigvalsh(a).min() > 0

    def test_make_spd_batch(self):
        mats = make_spd_batch([3, 7, 1], "s", seed=0)
        assert [m.shape[0] for m in mats] == [3, 7, 1]
        assert all(m.dtype == np.float32 for m in mats)

    def test_make_spd_rejects_negative(self):
        with pytest.raises(ValueError):
            make_spd(-1)

    def test_residual_zero_for_exact(self):
        a = make_spd(9, "d", seed=3)
        l = sla.cholesky(a, lower=True)
        assert cholesky_residual(a, l) < 1e-14

    def test_residual_large_for_wrong(self):
        a = make_spd(9, "d", seed=4)
        assert cholesky_residual(a, np.eye(9)) > 1e-3

    def test_lower_triangular_error_shape_mismatch(self):
        with pytest.raises(ValueError):
            lower_triangular_error(np.eye(2), np.eye(3))
