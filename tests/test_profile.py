"""Tests for the profiling and trace-export tooling."""

import json

import pytest

from repro import Device, PotrfOptions, VBatch, potrf_vbatched
from repro.bench import export_chrome_trace, format_profile, profile_timeline
from repro.device.clock import Timeline
from repro.distributions import uniform_sizes


def _run_workload():
    dev = Device(execute_numerics=False)
    b = VBatch.allocate(dev, uniform_sizes(200, 128, seed=0), "d")
    dev.reset_clock()
    potrf_vbatched(dev, b, PotrfOptions())
    return dev


class TestProfile:
    def test_flat_profile_shape(self):
        dev = _run_workload()
        prof = profile_timeline(dev.timeline)
        assert prof
        assert prof == sorted(prof, key=lambda p: -p.total_time)
        assert sum(p.share for p in prof) == pytest.approx(1.0)
        cats = {p.category for p in prof}
        assert any(c.startswith("kernel:fused_potrf") for c in cats)
        assert any(c.startswith("kernel:aux") for c in cats)

    def test_aux_share_is_negligible(self):
        """§III-F measured through the profiler."""
        dev = _run_workload()
        aux = sum(p.share for p in profile_timeline(dev.timeline) if "aux" in p.category)
        assert aux < 0.05

    def test_format_profile_renders(self):
        dev = _run_workload()
        text = format_profile(dev.timeline)
        assert "category" in text and "share_%" in text

    def test_empty_timeline(self):
        assert profile_timeline(Timeline()) == []


class TestChromeTrace:
    def test_export_valid_json(self, tmp_path):
        dev = _run_workload()
        path = export_chrome_trace(dev.timeline, tmp_path / "trace.json")
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        assert len(events) == len(dev.timeline.intervals)
        for e in events:
            assert e["ph"] == "X"
            assert e["dur"] >= 0
            assert "utilization" in e["args"]

    def test_events_ordered_within_simulated_time(self, tmp_path):
        dev = _run_workload()
        path = export_chrome_trace(dev.timeline, tmp_path / "t.json")
        events = json.loads(path.read_text())["traceEvents"]
        end = dev.synchronize() * 1e6
        for e in events:
            assert 0 <= e["ts"] <= end + 1e-6
