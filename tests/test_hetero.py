"""Tests for heterogeneous groups: placement, stealing, exactness, serving."""

import numpy as np
import pytest

from repro.core.batch import VBatch
from repro.core.driver import PotrfOptions, run_potrf_vbatched
from repro.device import Device
from repro.device.hetero import HeteroGroup, parse_members, run_potrf_hetero
from repro.device.member import CpuMember, GpuMember
from repro.device.spec import K20X, K40C, TITAN_BLACK
from repro.errors import ArgumentError
from repro.hostblas import make_spd_batch, potrf
from repro.kernels import grouping
from repro.observability.trace import Tracer, activate
from repro.types import Precision
from repro import distributions as dist

D = Precision.D


def _timing_batch(sizes):
    dev = Device(execute_numerics=False, name="t:staging")
    return VBatch.allocate(dev, np.asarray(sizes, dtype=np.int64), D)


def _run(group, sizes, **kwargs):
    batch = _timing_batch(sizes)
    return run_potrf_vbatched(
        batch.device, batch, int(np.max(sizes)), PotrfOptions(), devices=group, **kwargs
    )


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ArgumentError, match="at least one member"):
            HeteroGroup([])
        with pytest.raises(ArgumentError, match="ComputeMember"):
            HeteroGroup([Device(execute_numerics=False)])
        m = GpuMember(execute_numerics=False, name="g")
        with pytest.raises(ArgumentError, match="duplicate"):
            HeteroGroup([m, GpuMember(execute_numerics=False, name="g")])
        with pytest.raises(ArgumentError, match="unknown placement"):
            HeteroGroup([m], placement="bogus")
        with pytest.raises(ArgumentError, match="chunks_per_member"):
            HeteroGroup([m], chunks_per_member=0)

    def test_parse_members(self):
        members = parse_members("k40c*2+k20x+titan-black+cpu:8", name_prefix="p:")
        kinds = [m.kind for m in members]
        assert kinds == ["gpu", "gpu", "gpu", "gpu", "cpu"]
        assert [m.name for m in members] == [
            "p:k40c0", "p:k40c1", "p:k20x0", "p:titan-black0", "p:cpu0"
        ]
        assert members[0].device.spec is K40C
        assert members[2].device.spec is K20X
        assert members[3].device.spec is TITAN_BLACK
        assert members[4].cores == 8

    def test_parse_members_errors(self):
        for bad in ("", "  ", "warp9", "k40c*0", "k40c*x", "cpu:many", "cpux"):
            with pytest.raises(ArgumentError):
                parse_members(bad)

    def test_staging_device_for_all_cpu_group(self):
        group = HeteroGroup([CpuMember(name="c")])
        assert group.staging_device is group.staging_device
        assert group.staging_device.execute_numerics

    def test_group_views(self):
        group = HeteroGroup.simulated("k40c*2+cpu", execute_numerics=False)
        assert len(group) == 3
        assert len(group.gpu_members) == 2 and len(group.cpu_members) == 1
        assert group.staging_device is group.gpu_members[0].device


class TestPlacement:
    def test_chunks_cover_batch_exactly(self):
        sizes = dist.uniform_sizes(100, 256, seed=5)
        group = HeteroGroup.simulated("k40c*3+cpu", execute_numerics=False)
        parts = group.chunk_indices(sizes, D)
        merged = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(merged, np.arange(sizes.size))

    def test_assign_records_alternatives(self):
        sizes = dist.uniform_sizes(60, 128, seed=2)
        group = HeteroGroup.simulated("k40c+cpu", execute_numerics=False)
        queues = group.assign(sizes, D, PotrfOptions())
        chunks = [c for q in queues.values() for c in q]
        assert chunks and all(set(c.alternatives) == set(queues) for c in chunks)
        assert all(c.est > 0 for c in chunks)

    def test_result_carries_placement_and_member_stats(self):
        sizes = dist.uniform_sizes(80, 192, seed=7)
        group = HeteroGroup.simulated("k40c*2", execute_numerics=False)
        res = _run(group, sizes)
        assert res.placement and res.member_stats is not None
        placed = sum(d["count"] for d in res.placement)
        assert placed == sizes.size
        assert sum(ms.matrices for ms in res.member_stats) == sizes.size
        assert res.launch_stats.chunks == len(res.placement)
        assert res.launch_stats.devices_used >= 1


class TestScaling:
    def test_eight_devices_beat_scaling_target(self):
        """The tentpole number: >= 3.5x on 8 identical K40c (was 2.15x)."""
        sizes = dist.uniform_sizes(400, 256, seed=11)
        dev = Device(execute_numerics=False)
        b1 = VBatch.allocate(dev, sizes, D)
        t1 = run_potrf_vbatched(
            dev, b1, int(sizes.max()), PotrfOptions(approach="fused")
        ).elapsed
        group = HeteroGroup.simulated(
            "k40c*8", execute_numerics=False, chunks_per_member=1
        )
        res = _run(group, sizes)
        assert t1 / res.elapsed >= 3.5
        assert res.launch_stats.devices_used == 8

    def test_mixed_group_beats_best_solo_member(self):
        sizes = dist.uniform_sizes(400, 256, seed=11)
        mixed = HeteroGroup.simulated(
            "k40c+k20x+titan-black+cpu", execute_numerics=False, chunks_per_member=1
        )
        t_mixed = _run(mixed, sizes).elapsed
        solos = {}
        for token in ("k40c", "k20x", "titan-black", "cpu"):
            solo = HeteroGroup.simulated(
                token, execute_numerics=False, chunks_per_member=1
            )
            solos[token] = _run(solo, sizes).elapsed
        assert t_mixed < min(solos.values())


class _SlowGpu(GpuMember):
    """Runs 10x slower than its estimates claim — a stealing victim."""

    def run_chunk(self, *args, **kwargs):
        run = super().run_chunk(*args, **kwargs)
        penalty = run.elapsed * 9.0
        self.device.host_time += penalty
        run.elapsed += penalty
        return run


class TestWorkStealing:
    def test_steal_rescues_a_mispredicted_member(self):
        sizes = dist.uniform_sizes(120, 160, seed=3)
        slow = _SlowGpu(execute_numerics=False, name="slow")
        fast = GpuMember(execute_numerics=False, name="fast")
        group = HeteroGroup([slow, fast], chunks_per_member=2)
        res = _run(group, sizes)
        assert res.launch_stats.work_steals >= 1
        stolen = [d for d in res.placement if "stolen_from" in d]
        assert stolen and all(d["member"] == "fast" for d in stolen)
        assert all(d["stolen_from"] == "slow" for d in stolen)
        # Cover is still exact after the rewrite.
        assert sum(d["count"] for d in res.placement) == sizes.size

    def test_steal_off_freezes_assignment(self):
        sizes = dist.uniform_sizes(120, 160, seed=3)
        slow = _SlowGpu(execute_numerics=False, name="slow")
        fast = GpuMember(execute_numerics=False, name="fast")
        group = HeteroGroup([slow, fast], chunks_per_member=2, steal=False)
        res = _run(group, sizes)
        assert res.launch_stats.work_steals == 0
        assert all("stolen_from" not in d for d in res.placement)


class TestNumerics:
    def test_gpu_sharded_hetero_is_bit_identical_to_single_device(self):
        """Reference-kernel differential: member placement must be
        invisible in the factors, bit for bit."""
        mats = make_spd_batch([48, 7, 33, 64, 12, 33, 21, 56], D, seed=3)
        # Pin approach AND nb: the default nb tracks the planner's
        # max_n, and a chunk's local max_n differs from the global one.
        opts = PotrfOptions(approach="fused", nb=16)
        with grouping.reference_numerics():
            single = VBatch.from_host(Device(), [m.copy() for m in mats])
            run_potrf_vbatched(single.device, single, 64, opts)
            group = HeteroGroup.simulated("k40c*3", name_prefix="n:")
            batch = VBatch.from_host(Device(), [m.copy() for m in mats])
            res = run_potrf_vbatched(batch.device, batch, 64, opts, devices=group)
        assert res.failed_count == 0
        for i in range(len(mats)):
            assert np.array_equal(
                batch.matrix_view(i), single.matrix_view(i)
            ), f"matrix {i}"

    def test_cpu_placed_matrices_match_hostblas_exactly(self):
        mats = make_spd_batch([30, 18, 44, 25], D, seed=9)
        group = HeteroGroup([CpuMember(name="c")])
        batch = VBatch.from_host(group.staging_device, [m.copy() for m in mats])
        res = run_potrf_vbatched(batch.device, batch, 44, PotrfOptions(), devices=group)
        assert res.failed_count == 0
        assert res.approach == "hetero[cpu-percore]"
        for i, a0 in enumerate(mats):
            ref = a0.copy()
            assert potrf(ref, "l") == 0
            assert np.array_equal(batch.matrix_view(i), ref), f"matrix {i}"

    def test_mixed_group_numerics_are_correct(self):
        sizes = dist.generate_sizes("uniform", 24, 96, seed=4)
        mats = make_spd_batch(sizes.tolist(), D, seed=8)
        group = HeteroGroup.simulated("k40c+k20x+cpu", name_prefix="m:")
        batch = VBatch.from_host(group.staging_device, [m.copy() for m in mats])
        res = run_potrf_vbatched(
            batch.device, batch, int(sizes.max()), PotrfOptions(), devices=group
        )
        assert res.failed_count == 0
        for i, a0 in enumerate(mats):
            L = np.tril(batch.matrix_view(i))
            assert np.linalg.norm(L @ L.T - a0) / np.linalg.norm(a0) < 1e-13

    def test_info_codes_map_back_to_global_indices(self):
        mats = make_spd_batch([24] * 8, D, seed=1)
        bad = 5
        mats[bad] = -np.eye(24)
        group = HeteroGroup.simulated("k40c*2+cpu", name_prefix="i:")
        batch = VBatch.from_host(group.staging_device, [m.copy() for m in mats])
        opts = PotrfOptions(on_error="info")
        res = run_potrf_vbatched(batch.device, batch, 24, opts, devices=group)
        assert res.infos[bad] != 0
        assert np.all(res.infos[np.arange(8) != bad] == 0)


class TestObservability:
    def test_trace_spans_and_placement_args(self):
        sizes = dist.uniform_sizes(60, 128, seed=6)
        group = HeteroGroup.simulated("k40c*2+cpu", execute_numerics=False)
        tracer = Tracer()
        with activate(tracer):
            batch = _timing_batch(sizes)
            run_potrf_hetero(group, batch, int(sizes.max()), PotrfOptions())
        spans = tracer.spans(cat="hetero")
        names = {e.name for e in spans}
        assert "hetero-place" in names and "hetero-chunk" in names
        place = next(e for e in spans if e.name == "hetero-place")
        assert place.args["decisions"] and place.args["chunks"] == len(
            place.args["decisions"]
        )
        chunk_spans = [e for e in spans if e.name == "hetero-chunk"]
        assert len(chunk_spans) == place.args["chunks"]


class TestServing:
    def test_server_places_on_hetero_group_and_reports(self):
        group = HeteroGroup.simulated("k40c+cpu", name_prefix="s:")
        from repro.serving.server import BatchServer

        matrices = make_spd_batch([48, 7, 33, 64, 12, 33], D, seed=3)
        server = BatchServer(devices=group, policy="fifo", max_batch=len(matrices))
        futures = server.submit_many(matrices)
        assert server.pump(force=True) == len(matrices)
        responses = [f.result(timeout=5.0) for f in futures]
        assert all(r.ok for r in responses)
        snap = server.metrics.snapshot()
        placement = snap["placement"]
        assert placement, "hetero dispatch must surface per-member stats"
        assert sum(ms["matrices"] for ms in placement.values()) == len(matrices)
        exposition = server.metrics.expose()
        assert "hetero_chunks_total" in exposition
