"""Tests for the autotuning framework."""

import pytest

from repro.autotune import (
    FUSED_NB_TEMPLATES,
    GEMM_TILINGS,
    Tuner,
    TuningCache,
    size_band,
)
from repro.core.fused import default_fused_nb
from repro.types import Precision


class TestSpace:
    def test_band_quantization(self):
        assert size_band(1) == 16
        assert size_band(16) == 16
        assert size_band(17) == 32
        assert size_band(500) == 512
        assert size_band(5000) == 1024

    def test_band_validation(self):
        with pytest.raises(ValueError):
            size_band(0)

    def test_spaces_nonempty(self):
        assert len(FUSED_NB_TEMPLATES) >= 4
        assert len(GEMM_TILINGS) >= 3


class TestCache:
    def test_memory_roundtrip(self):
        c = TuningCache()
        c.put("r", "d", 64, {"choice": {"nb": 8}, "gflops": 1.0, "swept": 3})
        assert c.get("r", "d", 64)["choice"]["nb"] == 8
        assert c.get("r", "d", 128) is None
        assert len(c) == 1

    def test_json_persistence(self, tmp_path):
        path = tmp_path / "tuning.json"
        c1 = TuningCache(path)
        c1.put("r", "s", 32, {"choice": {"nb": 16}, "gflops": 2.0, "swept": 5})
        c2 = TuningCache(path)
        assert c2.get("r", "s", 32)["gflops"] == 2.0
        c2.clear()
        assert not path.exists()


class TestTuner:
    def test_fused_nb_feasible_and_cached(self):
        tuner = Tuner(batch_count=150)
        r1 = tuner.tune_fused_nb(128, "d")
        assert r1.choice["nb"] in FUSED_NB_TEMPLATES
        assert r1.gflops > 0
        assert r1.swept >= 3
        r2 = tuner.tune_fused_nb(120, "d")  # same band -> cache hit
        assert r2.choice == r1.choice

    def test_fused_nb_matches_builtin_table_reasonably(self):
        """The shipped default table must be near the swept optimum."""
        tuner = Tuner(batch_count=300)
        for prec in ("s", "d"):
            for n in (64, 256, 512):
                best = tuner.tune_fused_nb(n, prec)
                built_in = default_fused_nb(size_band(n), prec)
                base = tuner._fixed_run(
                    size_band(n), Precision(prec),
                    lambda dev: __import__("repro.core.fused", fromlist=["FusedDriver"]).FusedDriver(
                        dev, etm="classic", sorting=False, nb=built_in
                    ),
                )
                assert base > 0.8 * best.gflops, (prec, n, built_in, best.choice)

    def test_fused_nb_table_regenerates_at_interior_points(self):
        """The shipped ``_NB_TABLE`` is what the autotuner produces.

        Re-runs the fused-nb sweep at interior representative points of
        every band of the static table and asserts the swept winner IS
        the tabled value — the table is a regeneration artifact, not an
        independent hand-tuning.  Band-boundary sizes are excluded on
        purpose: there adjacent templates sit within simulated-timing
        noise and the argmax is not stable, which is exactly why the
        shipped table quantizes to bands.
        """
        tuner = Tuner()  # the default batch_count the table was swept at
        interior_points = {
            # precision -> (band, expected nb) per _NB_TABLE bucket
            "s": ((64, 32), (128, 24), (512, 16)),
            "d": ((64, 16), (192, 12), (768, 8)),
            "z": ((32, 12), (64, 8), (256, 6), (768, 4)),
        }
        for prec, points in interior_points.items():
            for band, expected in points:
                swept = tuner.tune_fused_nb(band, prec).choice["nb"]
                assert swept == expected == default_fused_nb(band, prec), (
                    prec, band, swept, expected
                )

    def test_crossover_between_bounds(self):
        tuner = Tuner()
        r = tuner.tune_crossover("d", grid=(128, 256, 384, 512, 768), batch_count=200)
        assert 128 <= r.choice["crossover_size"] <= 768

    def test_crossover_cached(self):
        tuner = Tuner()
        r1 = tuner.tune_crossover("d", grid=(128, 256), batch_count=100)
        r2 = tuner.tune_crossover("d", grid=(512, 1024), batch_count=100)
        assert r1.choice == r2.choice  # second call hits the cache

    def test_gemm_tiling_prefers_big_tiles_for_big_matrices(self):
        tuner = Tuner(batch_count=200)
        big = tuner.tune_gemm_tiling(512, 512, 128, "d")
        assert big.choice["blk_m"] >= 32

    def test_gemm_tiling_z_feasible(self):
        tuner = Tuner(batch_count=100)
        r = tuner.tune_gemm_tiling(128, 128, 32, "z")
        from repro.kernels.gemm import GemmTiling

        t = GemmTiling(blk_m=r.choice["blk_m"], blk_n=r.choice["blk_n"],
                       blk_k=r.choice["blk_k"], threads=r.choice["threads"])
        assert t.shared_mem(16) <= 48 * 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            Tuner(batch_count=0)
