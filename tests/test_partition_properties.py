"""Property-based invariants of the batch partitioners (all policies).

Three families of facts, for every policy ``partition_sizes`` accepts:

* **exact cover** — the pieces are a disjoint cover of the batch index
  range, each piece in ascending index order;
* **permutation invariance** — the sorting policies (``flops``,
  ``size-stratified``, ``step-aware``) decide from the sorted-size
  sequence only, so shuffling the input batch must reproduce the same
  per-shard *size multisets* (the order-dependent policies,
  ``round-robin``/``contiguous``, are exempt by design);
* **stratification** — size-stratified shards have non-increasing
  ``max_n`` down the shard list, and their sorted per-shard maxima are
  elementwise no larger than the flops/LPT policy's (the step-count
  reduction the heterogeneous scaling result rests on).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.device.topology import _POLICIES, partition_sizes
from repro.types import Precision

D = Precision.D

SORTING_POLICIES = ("flops", "size-stratified", "step-aware")

sizes_strategy = st.lists(
    st.integers(min_value=1, max_value=256), min_size=1, max_size=120
).map(lambda xs: np.asarray(xs, dtype=np.int64))
shards_strategy = st.integers(min_value=1, max_value=8)


class TestExactCover:
    @settings(max_examples=60, deadline=None)
    @given(sizes=sizes_strategy, n_shards=shards_strategy, policy=st.sampled_from(_POLICIES))
    def test_pieces_cover_every_index_once(self, sizes, n_shards, policy):
        parts = partition_sizes(sizes, D, n_shards, policy)
        assert len(parts) == n_shards
        merged = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(merged, np.arange(sizes.size))

    @settings(max_examples=60, deadline=None)
    @given(sizes=sizes_strategy, n_shards=shards_strategy, policy=st.sampled_from(_POLICIES))
    def test_pieces_are_ascending(self, sizes, n_shards, policy):
        for p in partition_sizes(sizes, D, n_shards, policy):
            assert np.all(np.diff(p) > 0) or p.size <= 1

    @settings(max_examples=40, deadline=None)
    @given(
        sizes=sizes_strategy,
        n_shards=shards_strategy,
        # "contiguous" splits by flops range and "step-aware" packs to a
        # makespan bound — both may leave shards empty by design.
        policy=st.sampled_from(("flops", "round-robin", "size-stratified")),
    )
    def test_no_shard_empty_while_another_overfull(self, sizes, n_shards, policy):
        """With at least as many items as shards, nobody idles."""
        parts = partition_sizes(sizes, D, n_shards, policy)
        if sizes.size >= n_shards:
            assert all(p.size >= 1 for p in parts)


class TestPermutationInvariance:
    @settings(max_examples=60, deadline=None)
    @given(
        sizes=sizes_strategy,
        n_shards=shards_strategy,
        policy=st.sampled_from(SORTING_POLICIES),
        perm_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_per_shard_size_multisets_survive_shuffling(
        self, sizes, n_shards, policy, perm_seed
    ):
        perm = np.random.default_rng(perm_seed).permutation(sizes.size)
        base = partition_sizes(sizes, D, n_shards, policy)
        shuffled = partition_sizes(sizes[perm], D, n_shards, policy)
        for s, (a, b) in enumerate(zip(base, shuffled)):
            np.testing.assert_array_equal(
                np.sort(sizes[a]), np.sort(sizes[perm][b]), err_msg=f"shard {s}"
            )


class TestStratification:
    @settings(max_examples=60, deadline=None)
    @given(sizes=sizes_strategy, n_shards=shards_strategy)
    def test_stratified_max_n_non_increasing(self, sizes, n_shards):
        parts = partition_sizes(sizes, D, n_shards, "size-stratified")
        maxes = [int(sizes[p].max()) for p in parts if p.size]
        assert maxes == sorted(maxes, reverse=True)

    @settings(max_examples=60, deadline=None)
    @given(sizes=sizes_strategy, n_shards=shards_strategy)
    def test_stratified_spreads_max_n_no_worse_than_flops(self, sizes, n_shards):
        """LPT leaves a top-k matrix in each of the k busiest shards;
        strata confine the large tail — sorted per-shard maxima must be
        elementwise <= the flops policy's."""
        strat = partition_sizes(sizes, D, n_shards, "size-stratified")
        lpt = partition_sizes(sizes, D, n_shards, "flops")
        m_strat = sorted((int(sizes[p].max()) for p in strat if p.size), reverse=True)
        m_lpt = sorted((int(sizes[p].max()) for p in lpt if p.size), reverse=True)
        assert len(m_strat) == len(m_lpt)
        assert all(a <= b for a, b in zip(m_strat, m_lpt))

    @settings(max_examples=40, deadline=None)
    @given(sizes=sizes_strategy, n_shards=shards_strategy)
    def test_step_aware_never_exceeds_whole_batch_cost_bound(self, sizes, n_shards):
        """Binary-searched makespan bound: every step-aware shard's
        modeled cost is at most the whole batch run as one shard."""
        from repro import flops as _flops
        from repro.device.topology import _default_shard_cost

        work = np.array([_flops.potrf_flops(int(n), D) for n in sizes])
        parts = partition_sizes(sizes, D, n_shards, "step-aware")
        whole = _default_shard_cost(sizes, work)
        for p in parts:
            if p.size:
                assert _default_shard_cost(sizes[p], work[p]) <= whole + 1e-12
