"""Tests for flop-count formulas (repro.flops)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import flops


class TestPotrfFlops:
    def test_leading_term_is_n_cubed_over_three(self):
        n = 10_000
        assert flops.potrf_flops(n) == pytest.approx(n**3 / 3, rel=1e-3)

    def test_small_exact(self):
        # n=1: one sqrt -> the formula gives 1/3 + 1/2 + 1/6 = 1 flop.
        assert flops.potrf_flops(1) == pytest.approx(1.0)

    def test_complex_is_four_times_real(self):
        assert flops.potrf_flops(64, "z") == pytest.approx(4 * flops.potrf_flops(64, "d"))
        assert flops.potrf_flops(64, "c") == pytest.approx(4 * flops.potrf_flops(64, "s"))

    def test_single_equals_double_count(self):
        assert flops.potrf_flops(100, "s") == flops.potrf_flops(100, "d")

    @given(st.integers(min_value=0, max_value=4096))
    def test_monotone_in_n(self, n):
        assert flops.potrf_flops(n + 1) > flops.potrf_flops(n)


class TestBlasFlops:
    def test_gemm(self):
        assert flops.gemm_flops(3, 5, 7) == 2 * 3 * 5 * 7

    def test_syrk_leading_term(self):
        n, k = 1000, 200
        assert flops.syrk_flops(n, k) == pytest.approx(n * n * k, rel=2e-3)

    def test_trsm_sides(self):
        assert flops.trsm_flops(8, 4, side="right") == 8 * 16
        assert flops.trsm_flops(8, 4, side="left") == 4 * 64

    def test_trsm_rejects_bad_side(self):
        with pytest.raises(ValueError, match="side"):
            flops.trsm_flops(4, 4, side="top")

    def test_trtri_leading_term(self):
        n = 3000
        assert flops.trtri_flops(n) == pytest.approx(n**3 / 3, rel=1e-3)

    def test_getrf_square_leading_term(self):
        n = 2000
        assert flops.getrf_flops(n, n) == pytest.approx(2 * n**3 / 3, rel=1e-2)

    def test_getrf_transpose_symmetry(self):
        assert flops.getrf_flops(100, 60) == pytest.approx(flops.getrf_flops(60, 100))

    def test_geqrf_square_leading_term(self):
        n = 2000
        assert flops.geqrf_flops(n, n) == pytest.approx(4 * n**3 / 3, rel=1e-2)


class TestBatchFlops:
    def test_sum_over_sizes(self):
        sizes = [3, 5, 9]
        expected = sum(flops.potrf_flops(n) for n in sizes)
        assert flops.batch_flops(sizes) == pytest.approx(expected)

    def test_accepts_numpy_sizes(self):
        sizes = np.array([4, 4, 4])
        assert flops.batch_flops(sizes) == pytest.approx(3 * flops.potrf_flops(4))

    def test_other_routines(self):
        assert flops.batch_flops([8], routine="getrf") == pytest.approx(
            flops.getrf_flops(8, 8)
        )
        assert flops.batch_flops([8], routine="geqrf") == pytest.approx(
            flops.geqrf_flops(8, 8)
        )

    def test_unknown_routine_raises(self):
        with pytest.raises(KeyError):
            flops.batch_flops([8], routine="sytrf")

    @given(
        st.lists(st.integers(min_value=1, max_value=256), min_size=1, max_size=40)
    )
    def test_batch_equals_manual_sum(self, sizes):
        manual = sum(flops.potrf_flops(n) for n in sizes)
        assert flops.batch_flops(sizes) == pytest.approx(manual)


class TestGflops:
    def test_conversion(self):
        assert flops.gflops(2.0e9, 1.0) == pytest.approx(2.0)
        assert flops.gflops(1.0e9, 0.5) == pytest.approx(2.0)

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_nonpositive_time_rejected(self, bad):
        with pytest.raises(ValueError, match="positive"):
            flops.gflops(1e9, bad)
