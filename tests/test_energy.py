"""Tests for the energy-to-solution machinery (paper §IV-G)."""

import pytest

from repro.distributions import uniform_sizes
from repro.energy import (
    EnergyComparison,
    EnergyReading,
    measure_cpu_energy,
    measure_gpu_energy,
    run_energy_experiment,
)


class TestReadings:
    def test_average_watts(self):
        r = EnergyReading("x", elapsed=2.0, joules=100.0)
        assert r.average_watts == pytest.approx(50.0)

    def test_zero_time(self):
        assert EnergyReading("x", 0.0, 0.0).average_watts == 0.0

    def test_comparison_ratios(self):
        c = EnergyComparison(
            "w",
            cpu=EnergyReading("c", 2.0, 200.0),
            gpu=EnergyReading("g", 1.0, 50.0),
        )
        assert c.energy_ratio == pytest.approx(4.0)
        assert c.time_ratio == pytest.approx(2.0)


class TestMeasurement:
    SIZES = uniform_sizes(300, 384, seed=0)

    def test_cpu_reading_sane(self):
        r = measure_cpu_energy(self.SIZES, "d")
        assert r.elapsed > 0
        assert r.joules > 0
        # Bounded by node idle and node max draw.
        assert 40.0 < r.average_watts < 480.0

    def test_gpu_reading_sane(self):
        r = measure_gpu_energy(self.SIZES, "d")
        assert r.elapsed > 0
        assert 40.0 < r.average_watts < 500.0

    def test_gpu_beats_cpu_in_time_and_energy(self):
        """Paper: always more efficient in both time and energy."""
        cpu = measure_cpu_energy(self.SIZES, "d")
        gpu = measure_gpu_energy(self.SIZES, "d")
        assert gpu.elapsed < cpu.elapsed
        assert gpu.joules < cpu.joules

    def test_experiment_bucket(self):
        c = run_energy_experiment(64, 128, 500, "d", seed=1)
        assert c.workload == "[64:128]x500"
        assert c.energy_ratio > 1.0

    def test_ratio_grows_with_size(self):
        small = run_energy_experiment(32, 64, 2000, "d")
        large = run_energy_experiment(512, 1024, 300, "d")
        assert large.energy_ratio > small.energy_ratio

    def test_up_to_three_x(self):
        """The paper's headline: up to ~3x more energy efficient."""
        c = run_energy_experiment(768, 1024, 300, "d")
        assert 2.0 < c.energy_ratio < 3.6

    def test_validation(self):
        with pytest.raises(ValueError):
            run_energy_experiment(0, 10, 5)
        with pytest.raises(ValueError):
            run_energy_experiment(20, 10, 5)
        with pytest.raises(ValueError):
            run_energy_experiment(1, 10, 0)
