"""Tests for the multifrontal solver package."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device import Device
from repro.errors import BatchNumericalError
from repro.multifrontal import analyze, factorize, nested_dissection, solve


def grid_problem(nx_, ny, shift=4.0):
    g = nx.convert_node_labels_to_integers(nx.grid_2d_graph(nx_, ny))
    n = g.number_of_nodes()
    a = nx.laplacian_matrix(g).astype(float).toarray()
    a += shift * np.eye(n)
    return g, a


class TestNestedDissection:
    def test_covers_every_vertex_once(self):
        g = nx.convert_node_labels_to_integers(nx.grid_2d_graph(9, 9))
        forest = nested_dissection(g, min_size=5)
        seen = []
        for tree in forest:
            seen.extend(tree.subtree_vertices)
        assert sorted(seen) == sorted(g.nodes)

    def test_separator_separates(self):
        """Removing a node's vertices disconnects its children's parts."""
        g = nx.convert_node_labels_to_integers(nx.grid_2d_graph(10, 10))
        (tree,) = nested_dissection(g, min_size=5)
        assert tree.children, "a 100-vertex grid must actually dissect"
        remaining = g.subgraph(set(g.nodes) - set(tree.vertices))
        comp_of = {}
        for ci, comp in enumerate(nx.connected_components(remaining)):
            for v in comp:
                comp_of[v] = ci
        for c1 in tree.children:
            comps = {comp_of[v] for v in c1.subtree_vertices}
            for c2 in tree.children:
                if c1 is c2:
                    continue
                assert comps.isdisjoint({comp_of[v] for v in c2.subtree_vertices})

    def test_disconnected_graph_gives_forest(self):
        g = nx.union(
            nx.convert_node_labels_to_integers(nx.path_graph(20)),
            nx.convert_node_labels_to_integers(nx.path_graph(15), first_label=100),
        )
        forest = nested_dissection(g, min_size=4)
        assert len(forest) == 2

    def test_min_size_validated(self):
        with pytest.raises(ValueError):
            nested_dissection(nx.path_graph(5), min_size=0)


class TestSymbolic:
    def test_front_structure_invariants(self):
        g = nx.convert_node_labels_to_integers(nx.grid_2d_graph(8, 8))
        sym = analyze(g, min_size=4)
        assert sym.n == 64
        for front in sym.fronts:
            # Boundary eliminated strictly after the separator.
            sep_max = max(sym.elim_position[v] for v in front.sep)
            for b in front.boundary:
                assert sym.elim_position[b] > sep_max
            # Children's boundaries live inside this front's rows.
            rows = set(front.rows)
            for child in front.children:
                assert set(child.boundary) <= rows

    def test_levels_schedule_children_first(self):
        g = nx.convert_node_labels_to_integers(nx.grid_2d_graph(8, 8))
        sym = analyze(g, min_size=4)
        seen = set()
        for level in sym.levels:
            for front in level:
                for child in front.children:
                    assert id(child) in seen
            seen.update(id(f) for f in level)

    def test_permutation_is_a_permutation(self):
        g = nx.convert_node_labels_to_integers(nx.grid_2d_graph(6, 6))
        sym = analyze(g, min_size=4)
        perm = sym.permutation()
        assert sorted(perm.tolist()) == sorted(g.nodes)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            analyze(nx.Graph())


class TestNumericAndSolve:
    @pytest.mark.parametrize("dims", [(6, 6), (12, 9), (15, 15)])
    def test_solve_matches_dense(self, dims):
        g, a = grid_problem(*dims)
        sym = analyze(g, min_size=6)
        dev = Device()
        fac = factorize(dev, a, sym)
        rng = np.random.default_rng(dims[0])
        b = rng.standard_normal(a.shape[0])
        x = solve(fac, b)
        np.testing.assert_allclose(a @ x, b, atol=1e-10)

    def test_irregular_graph(self):
        rng = np.random.default_rng(3)
        g = nx.connected_watts_strogatz_graph(120, 4, 0.2, seed=5)
        a = nx.laplacian_matrix(g).astype(float).toarray() + 5.0 * np.eye(120)
        sym = analyze(g, min_size=8)
        dev = Device()
        fac = factorize(dev, a, sym)
        b = rng.standard_normal(120)
        x = solve(fac, b)
        np.testing.assert_allclose(a @ x, b, atol=1e-9)

    def test_device_time_charged_per_level(self):
        g, a = grid_problem(10, 10)
        sym = analyze(g, min_size=6)
        dev = Device()
        fac = factorize(dev, a, sym)
        assert fac.elapsed > 0
        assert len(fac.level_stats) == len(sym.levels)
        assert fac.total_flops > 0

    def test_variable_front_sizes_within_levels(self):
        """The point of the exercise: real levels mix front orders."""
        g, a = grid_problem(14, 14)
        sym = analyze(g, min_size=6)
        spreads = [
            (min(f.order for f in lv), max(f.order for f in lv))
            for lv in sym.levels
            if len(lv) > 1
        ]
        assert any(hi > lo for lo, hi in spreads)

    def test_indefinite_matrix_raises(self):
        g, a = grid_problem(6, 6, shift=-10.0)  # strongly indefinite
        sym = analyze(g, min_size=6)
        dev = Device()
        with pytest.raises(BatchNumericalError):
            factorize(dev, a, sym)

    def test_solve_dict_interface(self):
        g = nx.grid_2d_graph(5, 5)  # tuple-labelled vertices
        n = g.number_of_nodes()
        a_mat = nx.laplacian_matrix(g).astype(float).toarray() + 3.0 * np.eye(n)
        order = list(g.nodes)
        index = {v: i for i, v in enumerate(order)}

        class Sym:
            def __getitem__(self, uv):
                return a_mat[index[uv[0]], index[uv[1]]]

        sym = analyze(g, min_size=5)
        dev = Device()
        fac = factorize(dev, Sym(), sym)
        rng = np.random.default_rng(0)
        b = {v: float(rng.standard_normal()) for v in g.nodes}
        x = solve(fac, b)
        xv = np.array([x[v] for v in order])
        bv = np.array([b[v] for v in order])
        np.testing.assert_allclose(a_mat @ xv, bv, atol=1e-10)

    def test_solve_validates_b(self):
        g, a = grid_problem(5, 5)
        sym = analyze(g, min_size=5)
        dev = Device()
        fac = factorize(dev, a, sym)
        with pytest.raises(ValueError):
            solve(fac, np.zeros(7))
        with pytest.raises(ValueError):
            solve(fac, {0: 1.0})

    @given(nx_=st.integers(4, 10), ny=st.integers(4, 10), seed=st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_property_random_grids_solve_exactly(self, nx_, ny, seed):
        g, a = grid_problem(nx_, ny)
        sym = analyze(g, min_size=5)
        dev = Device()
        fac = factorize(dev, a, sym)
        rng = np.random.default_rng(seed)
        b = rng.standard_normal(a.shape[0])
        x = solve(fac, b)
        np.testing.assert_allclose(a @ x, b, atol=1e-8)
