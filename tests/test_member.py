"""Tests for the ComputeMember backends (GPU + CPU cost models, chunks)."""

import numpy as np
import pytest

from repro.core.batch import VBatch
from repro.core.driver import PotrfOptions, run_potrf_vbatched
from repro.device import Device
from repro.device.member import (
    _GPU_COST_CACHE,
    CpuMember,
    GpuMember,
)
from repro.device.spec import K20X, K40C
from repro.errors import ArgumentError
from repro.hostblas import make_spd_batch, potrf
from repro.types import Precision
from repro import distributions as dist

D = Precision.D


class TestCapabilities:
    def test_gpu_capabilities(self):
        m = GpuMember(spec=K40C, execute_numerics=False, name="g0")
        caps = m.capabilities()
        assert caps.kind == "gpu" and caps.name == "g0"
        assert caps.parallel_lanes == K40C.num_sms
        assert caps.peak_gflops_fp64 > 0
        assert not caps.executes_numerics

    def test_cpu_capabilities(self):
        m = CpuMember(cores=8, name="c0")
        caps = m.capabilities()
        assert caps.kind == "cpu" and caps.parallel_lanes == 8
        assert caps.executes_numerics


class TestGpuCostModel:
    def test_estimate_positive_and_monotone(self):
        m = GpuMember(execute_numerics=False)
        small = m.estimate_cost(np.array([32, 48]), D, "fused")
        big = m.estimate_cost(np.full(200, 128), D, "fused")
        assert 0 < small < big

    def test_estimate_matches_simulator_relatively(self):
        """The calibrated fit must track the simulator it was probed on."""
        m = GpuMember(execute_numerics=False)
        sizes = dist.uniform_sizes(120, 200, seed=3)
        for approach in ("fused", "separated"):
            est = m.estimate_cost(sizes, D, approach)
            dev = Device(execute_numerics=False)
            batch = VBatch.allocate(dev, sizes, D)
            actual = run_potrf_vbatched(
                dev, batch, int(sizes.max()), PotrfOptions(approach=approach)
            ).elapsed
            assert abs(est - actual) / actual < 1.0, approach

    def test_auto_is_min_over_approaches(self):
        m = GpuMember(execute_numerics=False)
        sizes = np.array([240, 250, 256])
        auto = m.estimate_cost(sizes, D, "auto")
        assert auto == min(
            m.estimate_cost(sizes, D, "fused"), m.estimate_cost(sizes, D, "separated")
        )

    def test_unknown_approach_raises(self):
        m = GpuMember(execute_numerics=False)
        with pytest.raises(ArgumentError, match="unknown approach"):
            m.estimate_cost(np.array([32]), D, "bogus")

    def test_coefficients_cached_per_spec(self):
        # Single precision so no other test has warmed these keys.
        S = Precision.S
        a = GpuMember(execute_numerics=False)
        a.estimate_cost(np.array([64]), S, "fused")
        before = len(_GPU_COST_CACHE)
        b = GpuMember(execute_numerics=False)  # same spec+calibration
        b.estimate_cost(np.array([64]), S, "fused")
        assert len(_GPU_COST_CACHE) == before
        c = GpuMember(spec=K20X, execute_numerics=False)
        c.estimate_cost(np.array([64]), S, "fused")
        assert len(_GPU_COST_CACHE) == before + 1

    def test_choose_approach_honours_explicit_option(self):
        m = GpuMember(execute_numerics=False)
        sizes = np.array([16, 16, 16])
        assert m.choose_approach(sizes, D, PotrfOptions(approach="separated")) == "separated"
        assert m.choose_approach(sizes, D, PotrfOptions()) in ("fused", "separated")


class TestGpuChunk:
    def test_run_chunk_advances_clock_and_factors(self):
        mats = make_spd_batch([24, 40, 17, 33], D, seed=7)
        batch = VBatch.from_host(Device(), [m.copy() for m in mats])
        member = GpuMember(name="g0")
        idx = np.array([1, 3])
        run = member.run_chunk(batch, idx, PotrfOptions())
        assert run.count == 2 and run.max_n == 40 and run.kind == "gpu"
        assert np.all(run.infos == 0)
        assert member.now() > 0 and run.elapsed > 0
        for j in idx:
            L = np.tril(batch.matrix_view(int(j)))
            a0 = mats[int(j)]
            assert np.linalg.norm(L @ L.T - a0) / np.linalg.norm(a0) < 1e-13
        # Untouched matrices keep their source content.
        assert np.array_equal(batch.matrix_view(0), mats[0])

    def test_timing_plane_chunk_runs_without_numerics(self):
        sizes = np.array([64, 96, 128])
        dev = Device(execute_numerics=False)
        batch = VBatch.allocate(dev, sizes, D)
        member = GpuMember(execute_numerics=False, name="g0")
        run = member.run_chunk(batch, np.arange(3), PotrfOptions())
        assert run.elapsed > 0 and np.all(run.infos == 0)
        assert run.launch_stats.executed_launches > 0

    def test_reset_clock(self):
        member = GpuMember(execute_numerics=False)
        dev = Device(execute_numerics=False)
        batch = VBatch.allocate(dev, np.array([32]), D)
        member.run_chunk(batch, np.array([0]), PotrfOptions())
        assert member.synchronize() > 0
        member.reset_clock()
        assert member.synchronize() == 0.0


class TestCpuMember:
    def test_validation(self):
        with pytest.raises(ArgumentError, match="cores"):
            CpuMember(cores=0)
        with pytest.raises(ArgumentError, match="cores"):
            CpuMember(cores=999)
        with pytest.raises(ArgumentError, match="scheduling"):
            CpuMember(scheduling="bogus")

    def test_estimate_equals_executed_makespan(self):
        """The CPU estimate *is* the executed model — exact agreement."""
        member = CpuMember(cores=4, name="c0")
        sizes = dist.uniform_sizes(40, 128, seed=1)
        est = member.estimate_cost(sizes, D)
        dev = Device(execute_numerics=False)
        batch = VBatch.allocate(dev, sizes, D)
        run = member.run_chunk(batch, np.arange(sizes.size), PotrfOptions())
        assert run.elapsed == est
        assert member.synchronize() == est

    def test_chunk_is_bit_exact_vs_hostblas(self):
        mats = make_spd_batch([19, 45, 32], D, seed=5)
        batch = VBatch.from_host(Device(), [m.copy() for m in mats])
        member = CpuMember(name="c0")
        run = member.run_chunk(batch, np.arange(3), PotrfOptions())
        assert np.all(run.infos == 0) and run.approach == "cpu-percore"
        for i, a0 in enumerate(mats):
            ref = a0.copy()
            assert potrf(ref, "l") == 0
            assert np.array_equal(batch.matrix_view(i), ref), f"matrix {i}"

    def test_choose_approach_is_cpu_percore(self):
        member = CpuMember()
        assert member.choose_approach(np.array([32]), D, PotrfOptions()) == "cpu-percore"

    def test_contention_pinning_matches_baseline_convention(self):
        """contention_cores pins the §IV-F full-machine charge."""
        # Contention only bites once matrices spill the shared cache.
        sizes = np.array([512, 512])
        free = CpuMember(name="a")  # contention = min(cores, batch) = 2
        pinned = CpuMember(contention_cores=16, name="b")
        assert pinned.estimate_cost(sizes, D) > free.estimate_cost(sizes, D)
