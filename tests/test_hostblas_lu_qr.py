"""Tests for the host LU and QR references against SciPy."""

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings, strategies as st

from repro.errors import ArgumentError
from repro.hostblas import apply_pivots, build_q, geqr2, geqrf, getf2, getrf


def random_matrix(m, n, dtype=np.float64, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    if np.dtype(dtype).kind == "c":
        a = a + 1j * rng.standard_normal((m, n))
    return a.astype(dtype)


def lu_reconstruct(a_fact, ipiv, m, n):
    k = min(m, n)
    l = np.tril(a_fact[:, :k], -1)[:m, :]
    np.fill_diagonal(l, 1.0)
    l = l[:, :k]
    u = np.triu(a_fact[:k, :])
    pa = l @ u
    # Undo the permutation: apply pivots in reverse to recover A.
    return apply_pivots(pa, ipiv, forward=False)


class TestGetf2Getrf:
    @pytest.mark.parametrize("fn", ["getf2", "getrf"])
    @pytest.mark.parametrize("m,n", [(1, 1), (5, 5), (16, 16), (33, 33), (20, 12), (12, 20)])
    def test_reconstruction(self, fn, m, n):
        a = random_matrix(m, n, seed=m * 100 + n)
        work = a.copy()
        ipiv = np.zeros(min(m, n), dtype=np.int64)
        info = getf2(work, ipiv) if fn == "getf2" else getrf(work, ipiv, nb=8)
        assert info == 0
        np.testing.assert_allclose(lu_reconstruct(work, ipiv, m, n), a, atol=1e-10)

    def test_matches_scipy_lu(self):
        a = random_matrix(24, 24, seed=3)
        work = a.copy()
        ipiv = np.zeros(24, dtype=np.int64)
        assert getrf(work, ipiv, nb=7) == 0
        lu, piv = sla.lu_factor(a)
        np.testing.assert_allclose(np.abs(work), np.abs(lu), atol=1e-9)

    def test_pivoting_actually_pivots(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        ipiv = np.zeros(2, dtype=np.int64)
        assert getf2(a.copy(), ipiv) == 0
        assert ipiv[0] == 2  # row 2 chosen as first pivot

    def test_singular_info(self):
        a = np.zeros((3, 3))
        ipiv = np.zeros(3, dtype=np.int64)
        assert getf2(a, ipiv) == 1

    def test_blocked_equals_unblocked(self):
        a = random_matrix(40, 40, seed=9)
        w1, p1 = a.copy(), np.zeros(40, dtype=np.int64)
        w2, p2 = a.copy(), np.zeros(40, dtype=np.int64)
        getf2(w1, p1)
        getrf(w2, p2, nb=13)
        np.testing.assert_allclose(w1, w2, atol=1e-10)
        np.testing.assert_array_equal(p1, p2)

    def test_validation(self):
        with pytest.raises(ArgumentError):
            getf2(np.eye(3), np.zeros(1, dtype=np.int64))
        with pytest.raises(ArgumentError):
            getrf(np.eye(3), np.zeros(3, dtype=np.int64), nb=0)

    def test_solve_via_factors(self):
        a = random_matrix(12, 12, seed=11)
        b = random_matrix(12, 2, seed=12)
        work = a.copy()
        ipiv = np.zeros(12, dtype=np.int64)
        getrf(work, ipiv, nb=4)
        y = apply_pivots(b.copy(), ipiv)
        from repro.hostblas import trsm

        trsm("l", "l", "n", "u", 1.0, work, y)
        trsm("l", "u", "n", "n", 1.0, work, y)
        np.testing.assert_allclose(a @ y, b, atol=1e-9)

    @given(n=st.integers(1, 24), nb=st.integers(1, 10))
    @settings(max_examples=25, deadline=None)
    def test_property_reconstruction(self, n, nb):
        a = random_matrix(n, n, seed=n * 13 + nb)
        work = a.copy()
        ipiv = np.zeros(n, dtype=np.int64)
        assert getrf(work, ipiv, nb=nb) == 0
        np.testing.assert_allclose(lu_reconstruct(work, ipiv, n, n), a, atol=1e-9)


class TestGeqr2Geqrf:
    @pytest.mark.parametrize("fn", ["geqr2", "geqrf"])
    @pytest.mark.parametrize("m,n", [(1, 1), (6, 6), (20, 20), (33, 17), (17, 9)])
    def test_qr_reconstruction(self, fn, m, n):
        a = random_matrix(m, n, seed=m * 7 + n)
        work = a.copy()
        tau = np.zeros(min(m, n))
        if fn == "geqr2":
            geqr2(work, tau)
        else:
            geqrf(work, tau, nb=5)
        q = build_q(work, tau)
        r = np.triu(work)[: min(m, n) if m < n else m, :]
        r_full = np.triu(work)
        np.testing.assert_allclose(q @ r_full, a, atol=1e-9)
        # Q orthogonal
        np.testing.assert_allclose(q.T @ q, np.eye(m), atol=1e-9)

    def test_r_matches_scipy_up_to_signs(self):
        a = random_matrix(15, 15, seed=20)
        work = a.copy()
        tau = np.zeros(15)
        geqrf(work, tau, nb=4)
        _, r_scipy = sla.qr(a)
        np.testing.assert_allclose(np.abs(np.diag(np.triu(work))), np.abs(np.diag(r_scipy)), atol=1e-9)

    def test_blocked_equals_unblocked(self):
        a = random_matrix(30, 30, seed=21)
        w1, t1 = a.copy(), np.zeros(30)
        w2, t2 = a.copy(), np.zeros(30)
        geqr2(w1, t1)
        geqrf(w2, t2, nb=8)
        np.testing.assert_allclose(w1, w2, atol=1e-9)
        np.testing.assert_allclose(t1, t2, atol=1e-10)

    def test_complex_qr(self):
        a = random_matrix(10, 10, np.complex128, seed=22)
        work = a.copy()
        tau = np.zeros(10, dtype=np.complex128)
        geqrf(work, tau, nb=3)
        q = build_q(work, tau)
        np.testing.assert_allclose(q @ np.triu(work), a, atol=1e-9)
        np.testing.assert_allclose(q.conj().T @ q, np.eye(10), atol=1e-9)

    def test_validation(self):
        with pytest.raises(ArgumentError):
            geqr2(np.eye(3), np.zeros(1))
        with pytest.raises(ArgumentError):
            geqrf(np.eye(3), np.zeros(3), nb=0)

    @given(m=st.integers(1, 20), n=st.integers(1, 20))
    @settings(max_examples=25, deadline=None)
    def test_property_qr(self, m, n):
        a = random_matrix(m, n, seed=m * 31 + n)
        work = a.copy()
        tau = np.zeros(min(m, n))
        geqrf(work, tau, nb=6)
        q = build_q(work, tau)
        np.testing.assert_allclose(q @ np.triu(work), a, atol=1e-8)
