"""Tests for the launch-plan IR: builder, validation, cache semantics."""

import numpy as np
import pytest

from repro.core.batch import VBatch
from repro.core.driver import PotrfOptions, run_potrf_vbatched
from repro.core.fused import FusedDriver
from repro.core.plan import (
    AuxLaunch,
    Barrier,
    KernelLaunch,
    LaunchPlan,
    PlanBuilder,
    PlanCache,
    batch_fingerprint,
)
from repro.core.separated import SeparatedDriver
from repro.device import Device
from repro.errors import PlanError
from repro import distributions as dist


class _Stub:
    """Stands in for a kernel; plans never inspect kernel internals."""

    name = "stub"


def _timing_batch(seed=3, count=40, max_size=96):
    dev = Device(execute_numerics=False)
    sizes = dist.generate_sizes("uniform", count, max_size, seed=seed)
    return dev, VBatch.allocate(dev, sizes, "d"), sizes


class TestPlanBuilder:
    def test_nodes_indexed_in_emission_order(self):
        dev = Device(execute_numerics=False)
        pb = PlanBuilder(dev)
        i0 = pb.aux(_Stub())
        i1 = pb.launch(_Stub(), tag="potf2")
        i2 = pb.barrier()
        plan = pb.build()
        assert (i0, i1, i2) == (0, 1, 2)
        assert isinstance(plan.nodes[0], AuxLaunch)
        assert isinstance(plan.nodes[1], KernelLaunch)
        assert isinstance(plan.nodes[2], Barrier)
        assert plan.nodes[1].tag == "potf2"
        assert plan.kernel_launches == 2  # aux is still a launch

    def test_streams_and_deps_recorded(self):
        pb = PlanBuilder(Device(execute_numerics=False))
        a = pb.launch(_Stub(), stream=1)
        b = pb.launch(_Stub(), stream=2, after=(a,))
        plan = pb.build()
        assert plan.nodes[b].deps == (a,)
        assert plan.streams_used == (1, 2)

    def test_tagged_context_sets_default_tag(self):
        pb = PlanBuilder(Device(execute_numerics=False))
        with pb.tagged("trsm"):
            i = pb.launch(_Stub())
            with pb.tagged("inner"):
                j = pb.launch(_Stub())
            k = pb.launch(_Stub())
        m = pb.launch(_Stub())
        plan = pb.build()
        assert [plan.nodes[x].tag for x in (i, j, k, m)] == [
            "trsm", "inner", "trsm", "kernel",
        ]

    def test_forward_dependency_rejected(self):
        pb = PlanBuilder(Device(execute_numerics=False))
        pb.launch(_Stub(), after=(5,))
        with pytest.raises(PlanError):
            pb.build()

    def test_launch_without_kernel_rejected(self):
        plan = LaunchPlan(device=None, nodes=[KernelLaunch(index=0)])
        with pytest.raises(PlanError):
            plan.validate()

    def test_build_twice_rejected(self):
        pb = PlanBuilder(Device(execute_numerics=False))
        pb.build()
        with pytest.raises(PlanError):
            pb.build()

    def test_bound_numerics_follows_device_mode(self):
        assert PlanBuilder(Device()).build().bound_numerics
        assert not PlanBuilder(Device(execute_numerics=False)).build().bound_numerics
        assert PlanBuilder(Device(), None).build(bound_numerics=False).bound_numerics is False


class TestPlanWorkspaces:
    def test_plan_owns_workspaces_until_close(self):
        dev = Device(execute_numerics=False)
        pb = PlanBuilder(dev)
        pb.workspace((16,), np.int64)
        plan = pb.build()
        used_before = dev.memory.used
        assert len(plan.workspaces) == 1
        misses_before = dev.pool.misses + dev.pool.hits
        plan.close()
        assert plan.closed and not plan.workspaces
        # The block went back to the pool: the next same-shape get is a hit.
        dev.pool.get((16,), np.int64)
        assert dev.pool.hits + dev.pool.misses == misses_before + 1
        assert dev.pool.hits >= 1
        assert dev.memory.used <= used_before  # pool retained, nothing leaked

    def test_close_is_idempotent(self):
        pb = PlanBuilder(Device(execute_numerics=False))
        pb.workspace((8,), np.int64)
        plan = pb.build()
        plan.close()
        plan.close()

    def test_pool_facade_defers_release(self):
        dev = Device(execute_numerics=False)
        pb = PlanBuilder(dev)
        ws = pb.pool.get((8,), np.float64)
        pb.pool.release(ws)  # no-op: ownership stays with the plan
        plan = pb.build()
        assert plan.workspaces == [ws]

    def test_pool_facade_rejects_foreign_array(self):
        dev = Device(execute_numerics=False)
        pb = PlanBuilder(dev)
        foreign = dev.pool.get((8,), np.float64)
        with pytest.raises(PlanError):
            pb.pool.release(foreign)

    def test_abandon_releases_workspaces(self):
        dev = Device(execute_numerics=False)
        pb = PlanBuilder(dev)
        pb.workspace((8,), np.float64)
        pb.abandon()
        # Released: the same-bin get is served from the pool free list.
        dev.pool.get((8,), np.float64)
        assert dev.pool.hits >= 1


class TestBatchFingerprint:
    def test_equal_sizes_equal_fingerprint(self):
        dev, b1, sizes = _timing_batch()
        b2 = VBatch.allocate(dev, sizes.copy(), "d")
        assert batch_fingerprint(b1) == batch_fingerprint(b2)

    def test_different_sizes_differ(self):
        dev, b1, sizes = _timing_batch()
        other = sizes.copy()
        other[0] += 1
        b2 = VBatch.allocate(dev, other, "d")
        assert batch_fingerprint(b1) != batch_fingerprint(b2)

    def test_precision_matters(self):
        dev, b1, sizes = _timing_batch()
        b2 = VBatch.allocate(dev, sizes.copy(), "s")
        assert batch_fingerprint(b1) != batch_fingerprint(b2)


class TestPlanCache:
    def test_hit_and_miss_accounting(self):
        dev, batch, sizes = _timing_batch()
        cache = PlanCache()
        key = cache.key_for(dev, batch, int(sizes.max()), "fused", None)
        assert cache.get(key, batch) is None
        plan = FusedDriver(dev).plan(batch, int(sizes.max()))
        cache.put(key, plan)
        assert cache.get(key, batch) is plan
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_get_or_build_counts_planner_calls(self):
        dev, batch, sizes = _timing_batch()
        cache = PlanCache()
        key = cache.key_for(dev, batch, int(sizes.max()), "fused", None)
        build = lambda: FusedDriver(dev).plan(batch, int(sizes.max()))  # noqa: E731
        p1 = cache.get_or_build(key, batch, build)
        p2 = cache.get_or_build(key, batch, build)
        assert p1 is p2
        assert cache.planner_calls == 1

    def test_lru_eviction_closes_plans(self):
        dev = Device(execute_numerics=False)
        cache = PlanCache(max_plans=2)
        plans = []
        for i in range(3):
            pb = PlanBuilder(dev)
            pb.workspace((8,), np.int64)
            plan = pb.build()
            plans.append(plan)
            cache.put(("k", i), plan)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert plans[0].closed  # oldest evicted and released
        assert not plans[1].closed and not plans[2].closed

    def test_bound_plan_not_served_for_other_batch(self):
        dev = Device()  # numerics live -> plans bound to their batch
        rng = np.random.default_rng(0)
        mats = [np.eye(8) * 4 + rng.standard_normal((8, 8)) * 0.01 for _ in range(4)]
        mats = [(m + m.T) / 2 for m in mats]
        b1 = VBatch.from_host(dev, [m.copy() for m in mats])
        b2 = VBatch.from_host(dev, [m.copy() for m in mats])
        cache = PlanCache()
        key = cache.key_for(dev, b1, 8, "fused", None)
        plan = FusedDriver(dev).plan(b1, 8)
        assert plan.bound_numerics
        cache.put(key, plan)
        assert cache.get(key, b1) is plan
        assert cache.get(key, b2) is None  # same key, wrong batch object

    def test_clear_closes_everything(self):
        dev = Device(execute_numerics=False)
        cache = PlanCache()
        pb = PlanBuilder(dev)
        pb.workspace((8,), np.int64)
        plan = pb.build()
        cache.put(("k",), plan)
        cache.clear()
        assert plan.closed and len(cache) == 0

    def test_max_plans_validated(self):
        with pytest.raises(PlanError):
            PlanCache(max_plans=0)


class TestCachedReexecutionAcceptance:
    """ISSUE acceptance (a): a cached plan re-executes with zero planner calls."""

    def test_second_run_skips_planning_and_matches_timing(self):
        dev, batch, sizes = _timing_batch(seed=7, count=60, max_size=200)
        max_n = int(sizes.max())
        cache = PlanCache()
        opts = PotrfOptions()
        r1 = run_potrf_vbatched(dev, batch, max_n, opts, plan_cache=cache)
        assert cache.planner_calls == 1
        assert not r1.launch_stats.plan_cache_hit
        dev.reset_clock()
        r2 = run_potrf_vbatched(dev, batch, max_n, opts, plan_cache=cache)
        assert cache.planner_calls == 1  # zero new planner calls
        assert r2.launch_stats.plan_cache_hit
        assert r2.elapsed == r1.elapsed  # bit-identical replay
        # A fresh equal-size batch also hits: timing-only plans are unbound.
        b3 = VBatch.allocate(dev, sizes.copy(), "d")
        r3 = run_potrf_vbatched(dev, b3, max_n, opts, plan_cache=cache)
        assert cache.planner_calls == 1
        assert r3.elapsed == r1.elapsed

    def test_cache_keyed_on_options(self):
        dev, batch, sizes = _timing_batch()
        max_n = int(sizes.max())
        cache = PlanCache()
        run_potrf_vbatched(dev, batch, max_n, PotrfOptions(approach="fused"), plan_cache=cache)
        run_potrf_vbatched(
            dev, batch, max_n, PotrfOptions(approach="fused", etm="classic"), plan_cache=cache
        )
        assert cache.planner_calls == 2  # different options -> different plan

    def test_separated_planner_cacheable_too(self):
        dev, batch, sizes = _timing_batch()
        max_n = int(sizes.max())
        cache = PlanCache()
        opts = PotrfOptions(approach="separated")
        r1 = run_potrf_vbatched(dev, batch, max_n, opts, plan_cache=cache)
        dev.reset_clock()
        r2 = run_potrf_vbatched(dev, batch, max_n, opts, plan_cache=cache)
        assert cache.planner_calls == 1
        assert r2.elapsed == r1.elapsed

    def test_planner_plan_does_not_touch_clock(self):
        dev, batch, sizes = _timing_batch()
        t0 = dev.synchronize()
        FusedDriver(dev).plan(batch, int(sizes.max())).close()
        SeparatedDriver(dev).plan(batch, int(sizes.max())).close()
        assert dev.synchronize() == t0


class TestPlanCacheThreadSafety:
    """The serving worker and submitters share one cache; it must hold
    up under concurrent get_or_build/evict traffic."""

    def test_concurrent_get_or_build_builds_once(self):
        import threading

        dev, batch, sizes = _timing_batch()
        cache = PlanCache()
        key = cache.key_for(dev, batch, int(sizes.max()), "fused", None)
        build = lambda: FusedDriver(dev).plan(batch, int(sizes.max()))  # noqa: E731
        plans, errors = [], []
        barrier = threading.Barrier(8)

        def worker():
            try:
                barrier.wait()
                for _ in range(20):
                    plans.append(cache.get_or_build(key, batch, build))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.planner_calls == 1  # the race never double-builds
        assert len({id(p) for p in plans}) == 1
        assert len(cache) == 1

    def test_concurrent_distinct_keys(self):
        import threading

        dev = Device(execute_numerics=False)
        cache = PlanCache(max_plans=64)
        errors = []

        def worker(tid):
            try:
                for i in range(10):
                    sizes = dist.generate_sizes("uniform", 10, 32 + tid, seed=i)
                    batch = VBatch.allocate(dev, sizes, "d")
                    key = cache.key_for(dev, batch, int(sizes.max()), "fused", None)
                    build = lambda: FusedDriver(dev).plan(batch, int(sizes.max()))  # noqa: B023,E731
                    cache.get_or_build(key, batch, build)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.hits + cache.misses == 40


class TestPlanCacheEvict:
    def _cached_plan(self, cache, dev, seed):
        sizes = dist.generate_sizes("uniform", 10, 64, seed=seed)
        batch = VBatch.allocate(dev, sizes, "d")
        key = cache.key_for(dev, batch, int(sizes.max()), "fused", None)
        return cache.get_or_build(
            key, batch, lambda: FusedDriver(dev).plan(batch, int(sizes.max()))
        )

    def test_evict_one_device_leaves_the_other(self):
        d1 = Device(execute_numerics=False)
        d2 = Device(execute_numerics=False)
        cache = PlanCache()
        p1 = self._cached_plan(cache, d1, seed=0)
        p2 = self._cached_plan(cache, d2, seed=1)
        assert cache.evict(device=d1) == 1
        assert p1.closed and not p2.closed
        assert len(cache) == 1
        assert cache.evictions == 1

    def test_evict_all(self):
        dev = Device(execute_numerics=False)
        cache = PlanCache()
        plans = [self._cached_plan(cache, dev, seed=s) for s in range(3)]
        assert cache.evict() == 3
        assert all(p.closed for p in plans)
        assert len(cache) == 0
        assert cache.evictions == 3

    def test_evict_unknown_device_is_a_noop(self):
        dev = Device(execute_numerics=False)
        cache = PlanCache()
        self._cached_plan(cache, dev, seed=0)
        assert cache.evict(device=Device(execute_numerics=False)) == 0
        assert len(cache) == 1
