"""Tests for multi-device sharding: partitioners, DeviceGroup, merge."""

import numpy as np
import pytest

from repro import flops as _flops
from repro.core.batch import VBatch
from repro.core.driver import PotrfOptions, run_potrf_vbatched
from repro.core.plan import PlanCache
from repro.device import Device, DeviceGroup, partition_sizes
from repro.errors import ArgumentError, BatchNumericalError
from repro.types import Precision
from repro import distributions as dist


def _spd(rng, n):
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


class TestPartitionSizes:
    @pytest.mark.parametrize("policy", ["flops", "round-robin", "contiguous"])
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 7])
    def test_partition_is_exact_cover(self, policy, n_shards):
        sizes = dist.generate_sizes("uniform", 100, 256, seed=5)
        parts = partition_sizes(sizes, Precision.D, n_shards, policy)
        assert len(parts) == n_shards
        merged = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(merged, np.arange(sizes.size))
        for p in parts:
            assert np.all(np.diff(p) > 0) or p.size <= 1  # order preserved

    def test_round_robin_assignment(self):
        parts = partition_sizes(np.array([8, 8, 8, 8, 8]), Precision.D, 2, "round-robin")
        np.testing.assert_array_equal(parts[0], [0, 2, 4])
        np.testing.assert_array_equal(parts[1], [1, 3])

    def test_flops_policy_balances_load(self):
        sizes = dist.generate_sizes("uniform", 400, 256, seed=11)
        parts = partition_sizes(sizes, Precision.D, 4, "flops")
        loads = [
            sum(_flops.potrf_flops(int(n), Precision.D) for n in sizes[p]) for p in parts
        ]
        # Greedy LPT on 400 items: shares within a few percent of equal.
        assert max(loads) <= 1.05 * min(loads)

    def test_flops_beats_contiguous_on_sorted_sizes(self):
        sizes = np.sort(dist.generate_sizes("uniform", 200, 256, seed=2))[::-1].copy()
        flops_of = lambda p: sum(  # noqa: E731
            _flops.potrf_flops(int(n), Precision.D) for n in sizes[p]
        )
        lpt = max(flops_of(p) for p in partition_sizes(sizes, Precision.D, 4, "flops"))
        rr = max(flops_of(p) for p in partition_sizes(sizes, Precision.D, 4, "round-robin"))
        assert lpt <= rr

    def test_more_shards_than_matrices(self):
        parts = partition_sizes(np.array([16, 32]), Precision.D, 4, "flops")
        assert sum(p.size for p in parts) == 2
        assert sum(p.size == 0 for p in parts) == 2

    def test_validation(self):
        with pytest.raises(ArgumentError):
            partition_sizes(np.array([8]), Precision.D, 0)
        with pytest.raises(ArgumentError):
            partition_sizes(np.array([8]), Precision.D, 2, "bogus")


class TestDeviceGroup:
    def test_simulated_constructor(self):
        group = DeviceGroup.simulated(3, execute_numerics=False)
        assert len(group) == 3
        assert len({id(d) for d in group}) == 3
        assert all(not d.execute_numerics for d in group)

    def test_validation(self):
        with pytest.raises(ArgumentError):
            DeviceGroup([])
        dev = Device(execute_numerics=False)
        with pytest.raises(ArgumentError):
            DeviceGroup([dev, dev])
        with pytest.raises(ArgumentError):
            DeviceGroup([dev], partition="bogus")
        with pytest.raises(ArgumentError):
            DeviceGroup.simulated(0)

    def test_group_synchronize_is_slowest_clock(self):
        group = DeviceGroup.simulated(2, execute_numerics=False)
        sizes = np.array([64] * 8)
        batch = VBatch.allocate(group.devices[0], sizes, "d")
        run_potrf_vbatched(group.devices[0], batch, 64, PotrfOptions())
        assert group.synchronize() == max(d.synchronize() for d in group)


class TestShardedExecution:
    def test_four_devices_beat_one_on_fig3_workload(self):
        """ISSUE acceptance (b): flops-balanced 4-device group wins."""
        sizes = dist.generate_sizes("uniform", 400, 256, seed=11)
        single = Device(execute_numerics=False)
        b1 = VBatch.allocate(single, sizes, "d")
        r1 = run_potrf_vbatched(single, b1, int(sizes.max()), PotrfOptions())
        group = DeviceGroup.simulated(4, execute_numerics=False, partition="flops")
        b4 = VBatch.allocate(Device(execute_numerics=False), sizes, "d")
        r4 = run_potrf_vbatched(
            b4.device, b4, int(sizes.max()), PotrfOptions(), devices=group
        )
        assert r4.elapsed < r1.elapsed
        assert r4.launch_stats.devices_used == 4
        assert r4.gflops > r1.gflops  # same flops, smaller makespan

    def test_sharded_numerics_match_single_device(self):
        rng = np.random.default_rng(0)
        sizes = dist.generate_sizes("uniform", 30, 80, seed=4)
        mats = [_spd(rng, int(n)) for n in sizes]
        single = Device()
        b1 = VBatch.from_host(single, [m.copy() for m in mats])
        run_potrf_vbatched(single, b1, int(sizes.max()), PotrfOptions())
        group = DeviceGroup.simulated(3)
        b3 = VBatch.from_host(Device(), [m.copy() for m in mats])
        res = run_potrf_vbatched(b3.device, b3, int(sizes.max()), PotrfOptions(), devices=group)
        assert res.failed_count == 0
        for i, a0 in enumerate(mats):
            L = np.tril(b3.matrix_view(i))
            assert np.linalg.norm(L @ L.T - a0) / np.linalg.norm(a0) < 1e-13

    def test_info_codes_map_back_to_global_indices(self):
        rng = np.random.default_rng(1)
        mats = [_spd(rng, 24) for _ in range(8)]
        bad = 5
        mats[bad] = -np.eye(24)  # negative definite: potf2 must flag it
        group = DeviceGroup.simulated(3, partition="round-robin")
        batch = VBatch.from_host(Device(), [m.copy() for m in mats])
        res = run_potrf_vbatched(batch.device, batch, 24, PotrfOptions(), devices=group)
        assert res.infos[bad] != 0
        assert np.all(res.infos[np.arange(8) != bad] == 0)

    def test_on_error_raise_propagates_from_shards(self):
        rng = np.random.default_rng(2)
        mats = [_spd(rng, 16) for _ in range(4)]
        mats[2] = -np.eye(16)
        group = DeviceGroup.simulated(2)
        batch = VBatch.from_host(Device(), mats)
        with pytest.raises(BatchNumericalError):
            run_potrf_vbatched(
                batch.device, batch, 16, PotrfOptions(on_error="raise"), devices=group
            )

    def test_single_device_group_matches_plain_path(self):
        sizes = dist.generate_sizes("uniform", 60, 128, seed=6)
        d1 = Device(execute_numerics=False)
        b1 = VBatch.allocate(d1, sizes, "d")
        r1 = run_potrf_vbatched(d1, b1, int(sizes.max()), PotrfOptions())
        d2 = Device(execute_numerics=False)
        b2 = VBatch.allocate(d2, sizes, "d")
        r2 = run_potrf_vbatched(
            d2, b2, int(sizes.max()), PotrfOptions(), devices=DeviceGroup([d2])
        )
        assert r2.elapsed == r1.elapsed
        assert r2.launch_stats.devices_used == 1

    def test_devices_accepts_plain_sequence(self):
        sizes = np.array([32] * 12)
        devs = [Device(execute_numerics=False) for _ in range(2)]
        batch = VBatch.allocate(Device(execute_numerics=False), sizes, "d")
        res = run_potrf_vbatched(batch.device, batch, 32, PotrfOptions(), devices=devs)
        assert res.launch_stats.devices_used == 2

    def test_plan_cache_reused_across_sharded_runs(self):
        sizes = dist.generate_sizes("uniform", 100, 128, seed=9)
        group = DeviceGroup.simulated(4, execute_numerics=False)
        batch = VBatch.allocate(Device(execute_numerics=False), sizes, "d")
        cache = PlanCache()
        r1 = run_potrf_vbatched(
            batch.device, batch, int(sizes.max()), PotrfOptions(), devices=group, plan_cache=cache
        )
        assert cache.planner_calls == len(
            [p for p in group.partition_indices(sizes, batch.precision) if p.size]
        )
        calls_before = cache.planner_calls
        group.reset_clocks()  # same start times -> bit-identical replay
        r2 = run_potrf_vbatched(
            batch.device, batch, int(sizes.max()), PotrfOptions(), devices=group, plan_cache=cache
        )
        assert cache.planner_calls == calls_before  # all shards hit
        assert r2.launch_stats.plan_cache_hit
        assert r2.elapsed == r1.elapsed

    def test_merged_launch_stats_cover_whole_batch(self):
        sizes = dist.generate_sizes("uniform", 50, 96, seed=8)
        group = DeviceGroup.simulated(2, execute_numerics=False)
        batch = VBatch.allocate(Device(execute_numerics=False), sizes, "d")
        res = run_potrf_vbatched(
            batch.device, batch, int(sizes.max()), PotrfOptions(), devices=group
        )
        stats = res.launch_stats
        assert stats.executed_launches == stats.plan_nodes - stats.barriers
        assert stats.executed_launches > 0
        assert stats.devices_used == 2
