"""Tests for trace export (Chrome/Perfetto JSON, JSONL) and the
trace-driven bottleneck report, including the acceptance-criteria
checks: one track per device stream plus a serving-queue track, and
trace-report padded-waste numbers that match the serving metrics.
"""

import json

import pytest

from repro.__main__ import main
from repro.observability import (
    Tracer,
    Track,
    analyze_trace,
    format_trace_report,
    load_chrome_trace,
    to_chrome_trace,
    trace_events_from_chrome,
    validate_chrome_trace,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.serving.loadgen import run_serve_bench


def _synthetic_tracer() -> Tracer:
    """A hand-built trace with one serving group and one device."""
    clock = iter(range(1, 200))
    tr = Tracer(wall_clock=lambda: float(next(clock)))
    with tr.span(
        "dispatch", Track("g:serving", "dispatch"), cat="dispatch",
        args={"size": 3, "useful_flops": 60.0, "padded_flops": 100.0,
              "queue_wait_sim": 0.5, "sim_elapsed": 2.0},
    ):
        tr.add_span("plan-build", Track("g:dev0", "planner"), 10.0, 11.0,
                    cat="plan", clock="wall")
        tr.instant("plan-cache-miss", Track("g:dev0", "planner"), cat="plan-cache")
        tr.instant("plan-cache-hit", Track("g:dev0", "planner"), cat="plan-cache")
        tr.instant("plan-cache-evict", Track("g:dev0", "planner"),
                   cat="plan-cache", args={"count": 2})
        tr.add_span("potf2", Track("g:dev0", "stream0"), 0.0, 1.0, cat="potf2")
        tr.add_span("potf2", Track("g:dev0", "stream1"), 0.5, 2.0, cat="potf2")
        tr.add_span("wait", Track("g:dev0", "stream1"), 2.0, 2.25, cat="wait")
    tr.instant("request-admitted", Track("g:serving", "queue"), cat="serving")
    tr.counter("queue_depth", Track("g:serving", "queue"), {"pending": 4})
    return tr


class TestAnalyzeTrace:
    def test_occupancy_per_stream(self):
        an = analyze_trace(_synthetic_tracer())
        occ = {(o.process, o.thread): o for o in an.occupancy}
        # Device window spans sim 0.0..2.25 across all its sim spans.
        s0 = occ[("g:dev0", "stream0")]
        assert s0.busy == pytest.approx(1.0)
        assert s0.window == pytest.approx(2.25)
        assert s0.occupancy == pytest.approx(1.0 / 2.25)
        s1 = occ[("g:dev0", "stream1")]
        assert s1.spans == 2 and s1.busy == pytest.approx(1.75)

    def test_group_aggregation(self):
        an = analyze_trace(_synthetic_tracer())
        g = an.group("g")
        assert g.batches == 1 and g.requests == 3
        assert g.useful_flops == 60.0 and g.padded_flops == 100.0
        assert g.waste_pct == pytest.approx(40.0)
        assert g.efficiency == pytest.approx(0.6)
        assert g.queue_wait_sim == 0.5 and g.execute_sim == 2.0
        assert g.plan_builds == 1 and g.plan_build_wall == pytest.approx(1.0)
        assert g.cache_hits == 1 and g.cache_misses == 1 and g.cache_evictions == 2
        assert set(g.critical_path) == {
            "queue_wait_sim_s", "plan_build_wall_s", "execute_sim_s"
        }

    def test_bottleneck_ranking_and_top(self):
        an = analyze_trace(_synthetic_tracer(), top=1)
        assert len(an.bottlenecks) == 1
        name, cat, calls, total = an.bottlenecks[0]
        assert (name, cat, calls) == ("potf2", "potf2", 2)
        assert total == pytest.approx(2.5)

    def test_waste_by_group(self):
        assert analyze_trace(_synthetic_tracer()).waste_by_group() == {
            "g": pytest.approx(40.0)
        }

    def test_accepts_chrome_dict(self):
        data = to_chrome_trace(_synthetic_tracer())
        an = analyze_trace(data)
        assert an.group("g").waste_pct == pytest.approx(40.0)

    def test_format_report_renders_all_tables(self):
        text = format_trace_report(analyze_trace(_synthetic_tracer()))
        assert "stream occupancy" in text
        assert "critical path" in text
        assert "padded flops + plan cache" in text
        assert "bottlenecks" in text


class TestChromeExport:
    def test_track_table_is_stable_and_named(self):
        data = to_chrome_trace(_synthetic_tracer())
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        processes = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
        threads = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert processes == {"g:dev0", "g:serving"}
        assert {"stream0", "stream1", "queue"} <= threads

    def test_timestamps_normalized_per_clock(self):
        data = to_chrome_trace(_synthetic_tracer())
        spans = [e for e in data["traceEvents"] if e["ph"] == "X"]
        sim_ts = [e["ts"] for e in spans if e["args"]["clock"] == "sim"]
        wall_ts = [e["ts"] for e in spans if e["args"]["clock"] == "wall"]
        assert min(sim_ts) == 0.0 and min(wall_ts) == 0.0
        assert all(e["dur"] >= 0 for e in spans)

    def test_validate_passes_on_exporter_output(self):
        assert validate_chrome_trace(to_chrome_trace(_synthetic_tracer())) == []

    def test_validate_rejects_bad_shapes(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        bad = {"traceEvents": [{"ph": "X", "name": "k", "ts": 0, "pid": 1, "tid": 1}]}
        problems = validate_chrome_trace(bad)
        assert any("dur" in p for p in problems)
        assert any("process_name" in p for p in problems)
        weird = {"traceEvents": [{"ph": "Q", "name": "k", "ts": 0, "pid": 1, "tid": 1}]}
        assert any("unsupported phase" in p for p in validate_chrome_trace(weird))

    def test_write_load_roundtrip(self, tmp_path):
        tr = _synthetic_tracer()
        path = write_chrome_trace(tr, tmp_path / "t.json")
        data = load_chrome_trace(path)
        events = trace_events_from_chrome(data)
        spans = [e for e in events if e.phase == "span"]
        assert len(spans) == len(tr.spans())
        # Round-tripped analysis agrees with the in-memory one.
        assert analyze_trace(events).group("g").waste_pct == pytest.approx(40.0)

    def test_load_rejects_invalid_file(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
        with pytest.raises(ValueError):
            load_chrome_trace(p)

    def test_jsonl_log(self, tmp_path):
        tr = _synthetic_tracer()
        path = write_trace_jsonl(tr, tmp_path / "t.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == len(tr.snapshot())
        assert {"phase", "name", "process", "thread", "clock", "start"} <= set(lines[0])


class TestServeBenchTraceEndToEnd:
    @pytest.fixture(scope="class")
    def traced_run(self):
        tracer = Tracer()
        report = run_serve_bench(
            requests=90, max_size=64, max_batch=16, concurrency=24, tracer=tracer
        )
        return tracer, report

    def test_one_track_per_stream_plus_queue_track(self, traced_run):
        tracer, _ = traced_run
        data = to_chrome_trace(tracer)
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        by_process: dict[str, set] = {}
        pid_name = {e["pid"]: e["args"]["name"] for e in meta
                    if e["name"] == "process_name"}
        for e in meta:
            if e["name"] == "thread_name":
                by_process.setdefault(pid_name[e["pid"]], set()).add(e["args"]["name"])
        for policy in ("per-request", "fifo", "size-bucket", "greedy-window"):
            assert "stream0" in by_process[f"{policy}:dev0"]
            assert "queue" in by_process[f"{policy}:serving"]

    def test_report_waste_matches_serving_metrics(self, traced_run):
        tracer, report = traced_run
        an = analyze_trace(tracer)
        for policy, snap in report["policies"].items():
            batching = snap["batching"]
            g = an.group(policy)
            assert g.useful_flops == pytest.approx(batching["useful_flops"], rel=1e-12)
            assert g.padded_flops == pytest.approx(batching["padded_flops"], rel=1e-12)
            assert g.requests == snap["requests"]["completed"]
            assert g.batches == snap["throughput"]["batches"]
            want = 100.0 * (1.0 - batching["efficiency"])
            assert g.waste_pct == pytest.approx(want, rel=1e-12)

    def test_cache_traffic_matches_snapshot(self, traced_run):
        tracer, report = traced_run
        an = analyze_trace(tracer)
        for policy, snap in report["policies"].items():
            g = an.group(policy)
            assert g.cache_hits == snap["plan_cache"]["hits"]
            assert g.cache_misses == snap["plan_cache"]["misses"]

    def test_window_close_and_admission_events_present(self, traced_run):
        tracer, _ = traced_run
        events = tracer.snapshot()
        closes = [e for e in events if e.name == "window-close"]
        admits = [e for e in events if e.name == "request-admitted"]
        assert closes and admits
        assert {e.args["reason"] for e in closes} <= {
            "force", "full", "deadline", "max-wait"
        }
        assert all(e.track.thread == "queue" for e in closes + admits)


class TestTraceCli:
    def test_serve_bench_trace_then_report(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        log = tmp_path / "trace.jsonl"
        assert main([
            "serve-bench", "-r", "60", "-n", "48", "--max-batch", "8",
            "--concurrency", "16", "--trace", str(trace),
            "--trace-jsonl", str(log),
        ]) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out and "event log written to" in out
        assert validate_chrome_trace(json.loads(trace.read_text())) == []
        assert log.read_text().count("\n") > 0
        assert main(["trace-report", str(trace), "--top", "3"]) == 0
        report_out = capsys.readouterr().out
        assert "stream occupancy" in report_out
        assert "padded flops + plan cache" in report_out

    def test_trace_report_missing_file(self, capsys, tmp_path):
        assert main(["trace-report", str(tmp_path / "nope.json")]) == 2
        assert "trace-report" in capsys.readouterr().err


class TestPerOperationBreakdown:
    @pytest.fixture(scope="class")
    def mixed_trace(self):
        import numpy as np

        from repro.device import Device
        from repro.observability.trace import activate
        from repro.serving import BatchServer

        tracer = Tracer()
        with activate(tracer):
            server = BatchServer(Device(execute_numerics=False), policy="cross-op")
            for n, op in [(24, "geqrf"), (20, "geqrf"), (16, "potrf"),
                          (24, "gesvj"), (18, "getrf")]:
                server.submit(np.zeros((n, n)), op=op)
            while server.pump(force=True):
                pass
            server.shutdown(drain=True)
        return analyze_trace(tracer), server.metrics.snapshot()

    def test_ops_reported_with_occupancy_and_waste(self, mixed_trace):
        analysis, snap = mixed_trace
        assert set(analysis.ops) == {"geqrf", "gesvj", "getrf", "potrf"}
        for op, rep in analysis.ops.items():
            assert rep.batches >= 1
            assert 0.0 <= rep.occupancy <= 1.0
            assert 0.0 <= rep.waste_pct <= 100.0
            assert rep.top_kernels(), f"no kernels attributed to {op}"
        assert set(analysis.waste_by_op()) == set(analysis.ops)

    def test_op_flops_match_serving_metrics(self, mixed_trace):
        analysis, snap = mixed_trace
        for op, row in snap["ops"].items():
            rep = analysis.ops[op]
            assert rep.useful_flops == pytest.approx(row["useful_flops"])
            assert rep.padded_flops == pytest.approx(row["padded_flops"])
            assert rep.requests == row["matrices"]

    def test_format_renders_per_op_tables(self, mixed_trace):
        analysis, _ = mixed_trace
        text = format_trace_report(analysis)
        assert "per-operation breakdown" in text
        assert "top kernels (per operation)" in text
        for op in ("geqrf", "gesvj", "getrf", "potrf"):
            assert op in text
