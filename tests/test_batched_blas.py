"""Tests for the public vbatched BLAS interface (paper §III-A)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.batched_blas import (
    MatrixBatch,
    gemm_vbatched,
    syrk_vbatched,
    trsm_vbatched,
    trtri_vbatched,
)
from repro.device import Device
from repro.errors import ArgumentError


def rng_mats(shapes, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    out = []
    for m, n in shapes:
        a = rng.standard_normal((m, n))
        if np.dtype(dtype).kind == "c":
            a = a + 1j * rng.standard_normal((m, n))
        out.append(a.astype(dtype))
    return out


class TestMatrixBatch:
    def test_from_host_roundtrip(self):
        dev = Device()
        mats = rng_mats([(3, 5), (7, 2)])
        mb = MatrixBatch.from_host(dev, mats)
        assert mb.batch_count == 2
        for src, back in zip(mats, mb.download()):
            np.testing.assert_array_equal(src, back)

    def test_metadata_on_device(self):
        dev = Device()
        mb = MatrixBatch.from_host(dev, rng_mats([(3, 5)]))
        np.testing.assert_array_equal(mb.rows_dev.data, [3])
        np.testing.assert_array_equal(mb.cols_dev.data, [5])

    def test_allocate_zero_dims(self):
        dev = Device(execute_numerics=False)
        mb = MatrixBatch.allocate(dev, [0, 4], [3, 0], "d")
        assert mb.batch_count == 2

    def test_validation(self):
        dev = Device()
        with pytest.raises(ArgumentError):
            MatrixBatch.from_host(dev, [])
        with pytest.raises(ArgumentError):
            MatrixBatch.from_host(dev, [np.ones((2, 2)), np.ones((2, 2), np.float32)])
        with pytest.raises(ArgumentError):
            MatrixBatch.from_host(dev, [np.ones(3)])
        with pytest.raises(ArgumentError):
            MatrixBatch.allocate(dev, [2], [2, 3], "d")

    def test_free(self):
        dev = Device()
        mb = MatrixBatch.from_host(dev, rng_mats([(20, 20)]))
        used = dev.memory.used
        mb.free()
        assert dev.memory.used < used


class TestGemmVbatched:
    @pytest.mark.parametrize("ta", ["n", "t"])
    @pytest.mark.parametrize("tb", ["n", "t"])
    def test_matches_numpy(self, ta, tb):
        dev = Device()
        dims = [(4, 3, 5), (16, 16, 16), (1, 9, 2)]
        a_shapes = [(m, k) if ta == "n" else (k, m) for m, n, k in dims]
        b_shapes = [(k, n) if tb == "n" else (n, k) for m, n, k in dims]
        c_shapes = [(m, n) for m, n, k in dims]
        amats, bmats, cmats = (rng_mats(s, i) for i, s in enumerate([a_shapes, b_shapes, c_shapes]))
        expected = []
        for x, y, z in zip(amats, bmats, cmats):
            ox = x if ta == "n" else x.T
            oy = y if tb == "n" else y.T
            expected.append(1.5 * ox @ oy + 0.5 * z)
        A, B, C = (MatrixBatch.from_host(dev, m) for m in (amats, bmats, cmats))
        res = gemm_vbatched(dev, ta, tb, 1.5, A, B, 0.5, C)
        assert res.gflops > 0
        for e, got in zip(expected, C.download()):
            np.testing.assert_allclose(got, e, rtol=1e-12)

    def test_complex_conjugate(self):
        dev = Device()
        amats = rng_mats([(3, 4)], seed=5, dtype=np.complex128)
        bmats = rng_mats([(3, 6)], seed=6, dtype=np.complex128)
        cmats = [np.zeros((4, 6), np.complex128)]
        A, B, C = (MatrixBatch.from_host(dev, m) for m in (amats, bmats, cmats))
        gemm_vbatched(dev, "c", "n", 1.0, A, B, 0.0, C)
        np.testing.assert_allclose(C.download()[0], amats[0].conj().T @ bmats[0], rtol=1e-12)

    def test_dimension_mismatch_names_matrix(self):
        dev = Device()
        A = MatrixBatch.from_host(dev, rng_mats([(2, 3)]))
        B = MatrixBatch.from_host(dev, rng_mats([(4, 2)]))
        C = MatrixBatch.from_host(dev, rng_mats([(2, 2)]))
        with pytest.raises(ArgumentError, match="matrix 0"):
            gemm_vbatched(dev, "n", "n", 1.0, A, B, 0.0, C)

    def test_batch_count_mismatch(self):
        dev = Device()
        A = MatrixBatch.from_host(dev, rng_mats([(2, 2), (2, 2)]))
        B = MatrixBatch.from_host(dev, rng_mats([(2, 2)]))
        with pytest.raises(ArgumentError, match="batch counts"):
            gemm_vbatched(dev, "n", "n", 1.0, A, B, 0.0, B)

    def test_bad_flags(self):
        dev = Device()
        A = MatrixBatch.from_host(dev, rng_mats([(2, 2)]))
        with pytest.raises(ArgumentError):
            gemm_vbatched(dev, "x", "n", 1.0, A, A, 0.0, A)

    @given(
        count=st.integers(1, 6),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_random_batches(self, count, seed):
        rng = np.random.default_rng(seed)
        dims = [(int(rng.integers(1, 20)), int(rng.integers(1, 20)), int(rng.integers(1, 20)))
                for _ in range(count)]
        dev = Device()
        amats = rng_mats([(m, k) for m, n, k in dims], seed)
        bmats = rng_mats([(k, n) for m, n, k in dims], seed + 1)
        cmats = [np.zeros((m, n)) for m, n, k in dims]
        A, B, C = (MatrixBatch.from_host(dev, m) for m in (amats, bmats, cmats))
        gemm_vbatched(dev, "n", "n", 1.0, A, B, 0.0, C)
        for x, y, got in zip(amats, bmats, C.download()):
            np.testing.assert_allclose(got, x @ y, atol=1e-10)


class TestSyrkVbatched:
    @pytest.mark.parametrize("uplo", ["l", "u"])
    @pytest.mark.parametrize("trans", ["n", "t"])
    def test_triangles(self, uplo, trans):
        dev = Device()
        n, k = 7, 4
        amats = rng_mats([(n, k) if trans == "n" else (k, n)], seed=9)
        cmats = rng_mats([(n, n)], seed=10)
        c0 = cmats[0].copy()
        A = MatrixBatch.from_host(dev, amats)
        C = MatrixBatch.from_host(dev, cmats)
        syrk_vbatched(dev, uplo, trans, 2.0, A, 1.0, C)
        got = C.download()[0]
        op = amats[0] if trans == "n" else amats[0].T
        full = 2.0 * op @ op.T + c0
        mask = np.tril(np.ones((n, n), bool)) if uplo == "l" else np.triu(np.ones((n, n), bool))
        np.testing.assert_allclose(got[mask], full[mask], rtol=1e-12)
        np.testing.assert_array_equal(got[~mask], c0[~mask])

    def test_validation(self):
        dev = Device()
        A = MatrixBatch.from_host(dev, rng_mats([(4, 2)]))
        C = MatrixBatch.from_host(dev, rng_mats([(5, 5)]))
        with pytest.raises(ArgumentError, match="op\\(A\\)"):
            syrk_vbatched(dev, "l", "n", 1.0, A, 1.0, C)
        Cr = MatrixBatch.from_host(dev, rng_mats([(4, 5)]))
        with pytest.raises(ArgumentError, match="square"):
            syrk_vbatched(dev, "l", "n", 1.0, A, 1.0, Cr)


class TestTrsmVbatched:
    @pytest.mark.parametrize("side", ["l", "r"])
    @pytest.mark.parametrize("uplo", ["l", "u"])
    @pytest.mark.parametrize("trans", ["n", "t"])
    def test_all_cases(self, side, uplo, trans):
        dev = Device()
        rng = np.random.default_rng(3)
        na = 6
        shape = (na, 4) if side == "l" else (4, na)
        tri = rng.standard_normal((na, na)) + na * np.eye(na)
        tri = np.tril(tri) if uplo == "l" else np.triu(tri)
        bmat = rng.standard_normal(shape)
        b0 = bmat.copy()
        A = MatrixBatch.from_host(dev, [tri])
        B = MatrixBatch.from_host(dev, [bmat])
        res = trsm_vbatched(dev, side, uplo, trans, "n", 1.0, A, B)
        assert res.elapsed > 0
        x = B.download()[0]
        op = tri if trans == "n" else tri.T
        recon = op @ x if side == "l" else x @ op
        np.testing.assert_allclose(recon, b0, rtol=1e-9, atol=1e-10)

    def test_mixed_sizes_batch(self):
        dev = Device()
        rng = np.random.default_rng(4)
        tris, bs, b0s = [], [], []
        for n, nrhs in [(3, 2), (17, 5), (1, 1)]:
            t = np.tril(rng.standard_normal((n, n))) + n * np.eye(n)
            b = rng.standard_normal((n, nrhs))
            tris.append(t); bs.append(b); b0s.append(b.copy())
        A = MatrixBatch.from_host(dev, tris)
        B = MatrixBatch.from_host(dev, bs)
        trsm_vbatched(dev, "l", "l", "n", "n", 1.0, A, B)
        for t, x, b0 in zip(tris, B.download(), b0s):
            np.testing.assert_allclose(t @ x, b0, rtol=1e-9)

    def test_validation(self):
        dev = Device()
        A = MatrixBatch.from_host(dev, rng_mats([(3, 3)]))
        B = MatrixBatch.from_host(dev, rng_mats([(4, 2)]))
        with pytest.raises(ArgumentError, match="A order"):
            trsm_vbatched(dev, "l", "l", "n", "n", 1.0, A, B)
        with pytest.raises(ArgumentError):
            trsm_vbatched(dev, "x", "l", "n", "n", 1.0, A, A)


class TestTrtriVbatched:
    def test_inverts_batch(self):
        dev = Device()
        rng = np.random.default_rng(6)
        tris = []
        for n in (4, 12, 33):
            tris.append(np.tril(rng.standard_normal((n, n))) + n * np.eye(n))
        originals = [t.copy() for t in tris]
        A = MatrixBatch.from_host(dev, tris)
        res = trtri_vbatched(dev, "l", "n", A)
        assert res.gflops > 0
        for orig, inv in zip(originals, A.download()):
            n = orig.shape[0]
            np.testing.assert_allclose(np.tril(inv) @ orig, np.eye(n), atol=1e-9)

    def test_validation(self):
        dev = Device()
        A = MatrixBatch.from_host(dev, rng_mats([(3, 4)]))
        with pytest.raises(ArgumentError, match="square"):
            trtri_vbatched(dev, "l", "n", A)
        sq = MatrixBatch.from_host(dev, rng_mats([(3, 3)]))
        with pytest.raises(ArgumentError):
            trtri_vbatched(dev, "q", "n", sq)
