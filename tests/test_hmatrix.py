"""The hierarchical-matrix compression app (repro.apps.hmatrix)."""

import numpy as np
import pytest

from repro.apps.hmatrix import (
    _kernel_matrix,
    _mixed_stream,
    _ragged_clusters,
    check_hmatrix_acceptance,
    compress_kernel_matrix,
)
from repro.errors import ArgumentError
from repro.serving import BatchServer


class TestProblemConstruction:
    def test_kernel_matrix_is_spd_like(self):
        k = _kernel_matrix(64, 0.12, seed=1)
        assert k.shape == (64, 64)
        assert np.allclose(k, k.T)
        assert np.all(np.diag(k) == 1.0)
        assert np.all((k > 0.0) & (k <= 1.0))

    def test_clusters_cover_all_points_raggedly(self):
        clusters = _ragged_clusters(384, 24, 72, seed=7)
        assert clusters[0].start == 0 and clusters[-1].stop == 384
        widths = [c.stop - c.start for c in clusters]
        assert all(a.stop == b.start for a, b in zip(clusters, clusters[1:]))
        assert len(set(widths)) > 1  # genuinely ragged
        assert min(widths) >= 24

    def test_mixed_stream_is_deterministic_and_imbalanced(self):
        s1 = _mixed_stream(300, 96, seed=3)
        s2 = _mixed_stream(300, 96, seed=3)
        assert [op for op, _ in s1] == [op for op, _ in s2]
        counts = {op: 0 for op in ("geqrf", "potrf", "gesvj")}
        for op, m in s1:
            counts[op] += 1
            assert 64 <= m.shape[0] <= 96  # the windowing-ratio band
        assert counts["geqrf"] > counts["potrf"] > counts["gesvj"] > 0


class TestCompression:
    @pytest.fixture(scope="class")
    def result(self):
        server = BatchServer(policy="cross-op", max_batch=64)
        res = compress_kernel_matrix(
            server, n_points=192, min_cluster=20, max_cluster=48, seed=5
        )
        server.shutdown(drain=True)
        return res

    def test_tol_validated(self):
        server = BatchServer(policy="cross-op")
        with pytest.raises(ArgumentError, match="tol"):
            compress_kernel_matrix(server, n_points=64, tol=0.0)
        server.shutdown(drain=True)

    def test_every_tile_reconstructs_within_tolerance(self, result):
        assert result.ranks  # some admissible tiles existed
        assert result.max_rel_error <= 50 * result.tol
        assert result.potrf_failures == 0

    def test_low_rank_structure_is_exploited(self, result):
        assert 0.0 < result.compression_ratio < 1.0
        assert result.max_rank < 20  # smooth kernel => tiny ranks
        assert result.stored_entries < result.dense_entries

    def test_all_three_ops_went_through_the_server(self, result):
        ops = result.serving["ops"]
        assert set(ops) == {"geqrf", "gesvj", "potrf"}
        # One QR and one SVD per admissible tile, one Cholesky per cluster.
        assert ops["geqrf"]["matrices"] == len(result.ranks)
        assert ops["gesvj"]["matrices"] == len(result.ranks)
        assert ops["potrf"]["matrices"] == result.clusters


class TestAcceptanceGate:
    def _good_report(self):
        return {
            "config": {"tol": 1e-6},
            "compression": {
                "potrf_failures": 0,
                "max_rel_error": 1e-7,
                "tiles_compressed": 10,
                "compression_ratio": 0.4,
                "serving_ops": {"potrf": {}, "geqrf": {}, "gesvj": {}},
            },
            "mixed_serving": {
                "comparison": {
                    "throughput_speedup": 2.0,
                    "waste_pct_shared": 30.0,
                    "waste_pct_segregated": 30.0,
                }
            },
        }

    def test_clean_report_passes(self):
        assert check_hmatrix_acceptance(self._good_report()) == []

    def test_each_regression_is_flagged(self):
        cases = [
            (("compression", "potrf_failures"), 2, "Cholesky"),
            (("compression", "max_rel_error"), 1.0, "reconstruction error"),
            (("compression", "tiles_compressed"), 0, "no admissible tiles"),
            (("compression", "compression_ratio"), 0.95, "compression ratio"),
            (("mixed_serving", "comparison", "throughput_speedup"), 0.9, "speedup"),
            (("mixed_serving", "comparison", "waste_pct_shared"), 31.0, "waste"),
        ]
        for path, value, needle in cases:
            report = self._good_report()
            node = report
            for key in path[:-1]:
                node = node[key]
            node[path[-1]] = value
            failures = check_hmatrix_acceptance(report)
            assert any(needle in f for f in failures), (path, failures)

    def test_missing_op_in_metrics_is_flagged(self):
        report = self._good_report()
        del report["compression"]["serving_ops"]["gesvj"]
        assert any("gesvj" in f for f in check_hmatrix_acceptance(report))
