"""Tests for the LaunchPlan optimizer pass pipeline (core/optimizer.py).

The contract under test: every pass level produces bit-identical
numerics (the functional plane never moves — only barriers, stream
assignments and launch granularity change), the rewrite report and
registry counters are truthful, and the PlanCache key separates
optimized from unoptimized plans.
"""

import numpy as np
import pytest

from repro import distributions as dist
from repro.core.batch import VBatch
from repro.core.blas_steps import BlasStepDriver
from repro.core.driver import PotrfOptions, run_potrf_vbatched
from repro.core.fused import FusedDriver
from repro.core.optimizer import (
    PASS_NAMES,
    ancestor_masks,
    node_access,
    optimize_plan,
    resolve_passes,
)
from repro.core.partial import plan_partial_potrf
from repro.core.plan import Barrier, PlanCache
from repro.core.separated import SeparatedDriver
from repro.device import Device, PlanExecutor
from repro.errors import ArgumentError, PlanError
from repro.observability import MetricsRegistry

LEVELS = ("none", "elide", "prune", "coalesce", "lpt", "elide+prune", "all")


def _spd_matrices(rng, sizes):
    out = []
    for n in sizes:
        a = rng.standard_normal((int(n), int(n)))
        out.append(a @ a.T + int(n) * np.eye(int(n)))
    return out


def _half_cols(sizes):
    return np.maximum(0, np.asarray(sizes, dtype=np.int64) // 2)


# Each entry plans one driver family over (device, batch, sizes).
PLANNERS = {
    "fused": lambda d, b, s: FusedDriver(d).plan(b, int(s.max())),
    "separated": lambda d, b, s: SeparatedDriver(d).plan(b, int(s.max())),
    "streamed": lambda d, b, s: SeparatedDriver(
        d, syrk_mode="streamed", syrk_streams=4
    ).plan(b, int(s.max())),
    "blas": lambda d, b, s: BlasStepDriver(d).plan(b, int(s.max())),
    "partial": lambda d, b, s: plan_partial_potrf(d, b, _half_cols(s)),
}


class TestResolvePasses:
    def test_none_variants(self):
        assert resolve_passes("none") == ()
        assert resolve_passes(None) == ()
        assert resolve_passes("") == ()

    def test_all(self):
        assert resolve_passes("all") == PASS_NAMES

    @pytest.mark.parametrize("name", PASS_NAMES)
    def test_single_pass(self, name):
        assert resolve_passes(name) == (name,)

    def test_combo_canonical_order(self):
        # order in the string does not matter; pipeline order does
        assert resolve_passes("lpt+elide") == ("elide", "lpt")
        assert resolve_passes("coalesce+prune+elide") == ("elide", "prune", "coalesce")

    def test_unknown_pass_raises(self):
        with pytest.raises(ValueError, match="unknown optimization pass"):
            resolve_passes("elide+bogus")

    def test_options_validate_level(self):
        with pytest.raises(ArgumentError):
            PotrfOptions(optimize="bogus")
        assert PotrfOptions(optimize="elide+lpt").optimize == "elide+lpt"


def _timing_plan(planner, count=120, max_size=256, seed=7):
    dev = Device(execute_numerics=False)
    sizes = dist.generate_sizes("uniform", count, max_size, seed=seed)
    batch = VBatch.allocate(dev, sizes, "d")
    return dev, PLANNERS[planner](dev, batch, sizes)


class TestPassEffects:
    def test_elide_removes_streamed_barriers(self):
        dev, plan = _timing_plan("streamed")
        barriers_before = sum(isinstance(n, Barrier) for n in plan.nodes)
        assert barriers_before > 0
        optimize_plan(plan, "elide")
        rep = plan.meta["optimizer"]
        assert rep["barriers_elided"] > 0
        barriers_after = sum(isinstance(n, Barrier) for n in plan.nodes)
        assert barriers_after == barriers_before - rep["barriers_elided"]
        # the removed fences must be replaced by event edges
        assert any(n.deps for n in plan.nodes)
        plan.close()

    def test_coalesce_merges_streamed_syrk(self):
        dev, plan = _timing_plan("streamed")
        nodes_before = len(plan.nodes)
        optimize_plan(plan, "elide+coalesce")
        rep = plan.meta["optimizer"]
        assert rep["launches_merged"] > 0
        assert len(plan.nodes) == nodes_before - rep["barriers_elided"] - rep["launches_merged"]
        plan.close()

    def test_prune_drops_dead_tasks(self):
        dev, plan = _timing_plan("separated")
        optimize_plan(plan, "prune")
        rep = plan.meta["optimizer"]
        # a uniform batch always has matrices done before max_n's last
        # panel step, so the vbatched launches carry dead tasks
        assert rep["tasks_pruned"] > 0
        plan.close()

    def test_lpt_records_parallel_groups(self):
        dev, plan = _timing_plan("fused", count=300, max_size=512)
        optimize_plan(plan, "lpt")
        rep = plan.meta["optimizer"]
        assert rep["groups_rebalanced"] > 0
        assert rep["parallel_groups"]
        indices = {i for grp in rep["parallel_groups"] for i in grp}
        assert len(indices) == sum(len(g) for g in rep["parallel_groups"])
        for grp in rep["parallel_groups"]:
            assert len(grp) >= 2
        plan.close()

    def test_report_shape_and_validation(self):
        dev, plan = _timing_plan("separated")
        optimize_plan(plan, "all")
        rep = plan.meta["optimizer"]
        for key in ("level", "passes", "nodes_before", "nodes_after",
                    "barriers_elided", "launches_merged", "launches_pruned",
                    "tasks_pruned", "groups_rebalanced", "parallel_groups"):
            assert key in rep
        assert rep["nodes_after"] == len(plan.nodes)
        assert rep["passes"] == list(PASS_NAMES)
        plan.close()

    def test_none_is_identity(self):
        dev, plan = _timing_plan("fused")
        nodes = plan.nodes
        out = optimize_plan(plan, "none")
        assert out is plan
        assert plan.nodes is nodes
        assert "optimizer" not in plan.meta
        plan.close()

    def test_closed_plan_rejected(self):
        dev, plan = _timing_plan("fused")
        plan.close()
        with pytest.raises(PlanError):
            optimize_plan(plan, "all")

    def test_registry_counters_published(self):
        dev, plan = _timing_plan("streamed")
        registry = MetricsRegistry()
        optimize_plan(plan, "all", registry=registry)
        vals = registry.as_dict()
        rep = plan.meta["optimizer"]
        assert vals["plan_opt_barriers_elided"] == rep["barriers_elided"] > 0
        assert vals["plan_opt_launches_merged"] == rep["launches_merged"] > 0
        assert vals["plan_opt_launches_pruned"] == rep["launches_pruned"]
        plan.close()

    def test_simulated_time_never_regresses(self):
        for planner in PLANNERS:
            dev, plan = _timing_plan(planner)
            dev.reset_clock()
            t0 = dev.synchronize()
            PlanExecutor(dev).execute(plan)
            base = dev.synchronize() - t0
            plan.close()

            dev2, plan2 = _timing_plan(planner)
            optimize_plan(plan2, "all")
            dev2.reset_clock()
            t0 = dev2.synchronize()
            PlanExecutor(dev2).execute(plan2)
            opt = dev2.synchronize() - t0
            plan2.close()
            assert opt <= base * (1 + 1e-9), f"{planner}: {opt} > {base}"


def _numerics_result(planner, level, seed=11):
    dev = Device(execute_numerics=True)
    rng = np.random.default_rng(seed)
    sizes = np.asarray(sorted(rng.integers(4, 88, size=24), reverse=True), dtype=np.int64)
    batch = VBatch.from_host(dev, _spd_matrices(rng, sizes))
    plan = PLANNERS[planner](dev, batch, sizes)
    optimize_plan(plan, level)
    try:
        PlanExecutor(dev).execute(plan)
    finally:
        plan.close()
    out = batch.download_matrices()
    batch.free()
    return out


class TestNumericsBitIdentical:
    """The numerics plane is untouched at EVERY level — `==`, no tolerance."""

    @pytest.mark.parametrize("planner", sorted(PLANNERS))
    def test_all_levels_bit_identical(self, planner):
        baseline = _numerics_result(planner, "none")
        for level in LEVELS[1:]:
            got = _numerics_result(planner, level)
            for i, (a, b) in enumerate(zip(baseline, got)):
                assert np.array_equal(a, b), f"{planner}/{level}: matrix {i} diverged"


class TestConflictOrderPreserved:
    """Every conflicting pair in the optimized plan keeps a happens-before
    edge in node-list order (spot check; the hypothesis suite sweeps
    random workloads)."""

    @pytest.mark.parametrize("planner", sorted(PLANNERS))
    def test_conflicts_are_ordered(self, planner):
        dev, plan = _timing_plan(planner, count=60, max_size=160, seed=3)
        optimize_plan(plan, "all")
        masks = ancestor_masks(plan)
        accesses = [
            None if isinstance(n, Barrier) else node_access(n) for n in plan.nodes
        ]
        for j, aj in enumerate(accesses):
            if aj is None:
                continue
            rj, wj = aj
            for i in range(j):
                ai = accesses[i]
                if ai is None:
                    continue
                ri, wi = ai
                if _conflict(ri, wi, rj, wj):
                    assert masks[j] & (1 << i), (
                        f"{planner}: conflicting nodes {i} -> {j} lost their edge"
                    )
        plan.close()


def _conflict(r1, w1, r2, w2):
    def hits(a, b):
        if not a or not b:
            return False
        if "**" in a or "**" in b:
            return True
        if "*" in a and any(isinstance(t, int) for t in b):
            return True
        if "*" in b and any(isinstance(t, int) for t in a):
            return True
        return bool(set(a) & set(b))

    return hits(w1, w2) or hits(w1, r2) or hits(r1, w2)


class TestDriverIntegration:
    def test_run_potrf_optimize_kwarg_bit_identical(self):
        rng = np.random.default_rng(5)
        sizes = np.asarray(sorted(rng.integers(8, 96, size=16), reverse=True))
        mats = _spd_matrices(rng, sizes)

        def run(optimize):
            dev = Device(execute_numerics=True)
            batch = VBatch.from_host(dev, [m.copy() for m in mats])
            res = run_potrf_vbatched(
                dev, batch, int(sizes.max()), PotrfOptions(), optimize=optimize
            )
            out = batch.download_matrices()
            batch.free()
            return res, out

        base_res, base = run(None)
        opt_res, opt = run("all")
        assert base_res.failed_count == opt_res.failed_count == 0
        for a, b in zip(base, opt):
            assert np.array_equal(a, b)

    def test_stats_carry_optimizer_counters(self):
        dev = Device(execute_numerics=False)
        sizes = dist.generate_sizes("uniform", 150, 300, seed=2)
        batch = VBatch.allocate(dev, sizes, "d")
        res = run_potrf_vbatched(
            dev,
            batch,
            int(sizes.max()),
            PotrfOptions(approach="separated", syrk_mode="streamed"),
            optimize="all",
        )
        stats = res.launch_stats
        assert stats.opt_barriers_elided > 0
        assert stats.opt_launches_merged > 0
        registry = MetricsRegistry()
        stats.publish(registry)
        vals = registry.as_dict()
        assert vals["driver_opt_barriers_elided"] == stats.opt_barriers_elided
        assert vals["driver_opt_launches_merged"] == stats.opt_launches_merged
        assert vals["driver_opt_launches_pruned"] == stats.opt_launches_pruned

    def test_unoptimized_run_reports_zero(self):
        dev = Device(execute_numerics=False)
        sizes = dist.generate_sizes("uniform", 40, 128, seed=2)
        batch = VBatch.allocate(dev, sizes, "d")
        res = run_potrf_vbatched(dev, batch, int(sizes.max()), PotrfOptions())
        assert res.launch_stats.opt_barriers_elided == 0
        assert res.launch_stats.opt_launches_merged == 0
        assert res.launch_stats.opt_launches_pruned == 0


class TestPlanCacheKey:
    """Satellite (a): optimization level and stream count are key-bearing."""

    def _batch(self, dev):
        sizes = dist.generate_sizes("uniform", 30, 128, seed=4)
        return VBatch.allocate(dev, sizes, "d"), sizes

    def test_optimize_level_separates_keys(self):
        dev = Device(execute_numerics=False)
        batch, sizes = self._batch(dev)
        k_none = PlanCache.key_for(dev, batch, 128, "fused", "opts", optimize="none")
        k_all = PlanCache.key_for(dev, batch, 128, "fused", "opts", optimize="all")
        k_sub = PlanCache.key_for(dev, batch, 128, "fused", "opts", optimize="elide")
        assert len({k_none, k_all, k_sub}) == 3

    def test_stream_count_separates_keys(self):
        dev = Device(execute_numerics=False)
        batch, _ = self._batch(dev)
        k8 = PlanCache.key_for(dev, batch, 128, "fused", "opts", optimize="all", streams=8)
        k32 = PlanCache.key_for(dev, batch, 128, "fused", "opts", optimize="all", streams=32)
        assert k8 != k32

    def test_streams_default_from_device_spec(self):
        dev = Device(execute_numerics=False)
        batch, _ = self._batch(dev)
        implicit = PlanCache.key_for(dev, batch, 128, "fused", "opts")
        explicit = PlanCache.key_for(
            dev, batch, 128, "fused", "opts",
            optimize="none", streams=int(dev.spec.hardware_queues),
        )
        assert implicit == explicit

    def test_device_id_stays_leading_for_evict(self):
        dev = Device(execute_numerics=False)
        batch, _ = self._batch(dev)
        key = PlanCache.key_for(dev, batch, 128, "fused", "opts", optimize="all")
        assert key[0] == id(dev)

    def test_cache_never_serves_across_levels(self):
        dev = Device(execute_numerics=False)
        batch, sizes = self._batch(dev)
        cache = PlanCache()
        max_n = int(sizes.max())
        run_potrf_vbatched(dev, batch, max_n, PotrfOptions(), plan_cache=cache,
                           optimize="none")
        assert cache.misses == 1
        run_potrf_vbatched(dev, batch, max_n, PotrfOptions(), plan_cache=cache,
                           optimize="all")
        assert cache.misses == 2  # different level: no false hit
        res = run_potrf_vbatched(dev, batch, max_n, PotrfOptions(), plan_cache=cache,
                                 optimize="all")
        assert cache.hits == 1
        assert res.launch_stats.plan_cache_hit
