"""Tests for timeline, memory, scheduler, streams and the Device facade."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device import (
    BlockScheduler,
    BlockWork,
    Device,
    GlobalMemory,
    Interval,
    Kernel,
    LaunchConfig,
    Timeline,
)
from repro.device.power import GpuPowerModel, K40C_POWER
from repro.errors import DeviceOutOfMemory, StreamError
from repro.types import Precision


class TestTimeline:
    def test_advance_accumulates(self):
        tl = Timeline()
        tl.advance(1.0, "a")
        tl.advance(2.0, "b")
        assert tl.now == pytest.approx(3.0)
        assert [iv.category for iv in tl.intervals] == ["a", "b"]

    def test_record_moves_now_forward_only(self):
        tl = Timeline()
        tl.record(5.0, 7.0, "x")
        tl.record(1.0, 2.0, "y")
        assert tl.now == pytest.approx(7.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Timeline().advance(-1.0, "bad")
        with pytest.raises(ValueError):
            Interval(2.0, 1.0, "bad")

    def test_utilization_validated(self):
        with pytest.raises(ValueError):
            Interval(0.0, 1.0, "x", utilization=1.5)

    def test_busy_time_filtered(self):
        tl = Timeline()
        tl.advance(1.0, "kernel:gemm")
        tl.advance(2.0, "kernel:syrk")
        tl.advance(4.0, "memcpy_h2d")
        assert tl.busy_time("kernel:") == pytest.approx(3.0)
        assert tl.busy_time() == pytest.approx(7.0)

    def test_categories_profile(self):
        tl = Timeline()
        tl.advance(1.0, "a")
        tl.advance(2.0, "a")
        assert tl.categories() == {"a": pytest.approx(3.0)}

    def test_reset(self):
        tl = Timeline()
        tl.advance(1.0, "a")
        tl.reset()
        assert tl.now == 0.0 and tl.intervals == []


class TestGlobalMemory:
    def test_alloc_and_accounting(self):
        mem = GlobalMemory(1000)
        a = mem.alloc((10,), np.float64)  # 80 B
        assert mem.used == 80
        assert a.data.shape == (10,)
        assert np.all(a.data == 0)

    def test_oom_raises_with_details(self):
        mem = GlobalMemory(100)
        mem.alloc((10,), np.float64)
        with pytest.raises(DeviceOutOfMemory) as ei:
            mem.alloc((10,), np.float64)
        assert ei.value.requested == 80
        assert ei.value.free == 20

    def test_free_returns_capacity(self):
        mem = GlobalMemory(100)
        a = mem.alloc((10,), np.float64)
        a.free()
        assert mem.used == 0
        b = mem.alloc((12,), np.float64)  # 96 B now fits
        assert b.nbytes == 96

    def test_double_free_is_idempotent(self):
        mem = GlobalMemory(100)
        a = mem.alloc((2,), np.float64)
        a.free()
        a.free()
        assert mem.used == 0

    def test_peak_tracking(self):
        mem = GlobalMemory(1000)
        a = mem.alloc((50,), np.float64)
        a.free()
        mem.alloc((10,), np.float64)
        assert mem.peak_used == 400

    def test_free_all(self):
        mem = GlobalMemory(1000)
        mem.alloc((5,), np.float32)
        mem.alloc((5,), np.float32)
        assert mem.live_allocations == 2
        mem.free_all()
        assert mem.used == 0 and mem.live_allocations == 0

    def test_precision_property(self):
        mem = GlobalMemory(1000)
        assert mem.alloc((2, 2), np.complex64).precision is Precision.C

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            GlobalMemory(0)


class TestBlockScheduler:
    def test_single_wave(self):
        s = BlockScheduler()
        res = s.makespan(np.array([2.0]), np.array([10]), slots=10)
        assert res.makespan == pytest.approx(2.0)
        assert res.utilization == pytest.approx(1.0)

    def test_two_waves(self):
        s = BlockScheduler()
        res = s.makespan(np.array([2.0]), np.array([11]), slots=10)
        assert res.makespan == pytest.approx(4.0)

    def test_imbalance_penalty(self):
        """A single long block after short ones stretches the makespan."""
        s = BlockScheduler()
        d = np.array([1.0, 100.0])
        c = np.array([10, 1])
        res = s.makespan(d, c, slots=10)
        assert res.makespan == pytest.approx(101.0)

    def test_exact_matches_hand_schedule(self):
        s = BlockScheduler()
        # 2 slots, blocks [3, 1, 2, 2] in order: slot A: 3, slot B: 1+2+2=5.
        res = s.makespan(np.array([3.0, 1.0, 2.0, 2.0]), None, slots=2)
        assert res.makespan == pytest.approx(5.0)

    def test_analytic_close_to_exact_for_uniform(self):
        s = BlockScheduler()
        d = np.full(500, 1.0)
        exact = s.makespan(d, None, 15, force="exact").makespan
        approx = s.makespan(d, None, 15, force="analytic").makespan
        assert approx == pytest.approx(exact, rel=0.1)

    def test_empty_launch(self):
        s = BlockScheduler()
        res = s.makespan(np.array([]), None, slots=4)
        assert res.makespan == 0.0
        assert res.utilization == 0.0

    def test_zero_count_groups_ignored(self):
        s = BlockScheduler()
        res = s.makespan(np.array([5.0, 1.0]), np.array([0, 3]), slots=3)
        assert res.makespan == pytest.approx(1.0)

    def test_validation(self):
        s = BlockScheduler()
        with pytest.raises(ValueError):
            s.makespan(np.array([1.0]), None, slots=0)
        with pytest.raises(ValueError):
            s.makespan(np.array([-1.0]), None, slots=2)
        with pytest.raises(ValueError):
            s.makespan(np.array([1.0]), np.array([1, 2]), slots=2)
        with pytest.raises(ValueError):
            BlockScheduler(exact_threshold=-1)

    @given(
        durations=st.lists(st.floats(0.001, 10.0), min_size=1, max_size=60),
        slots=st.integers(1, 32),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_bounds(self, durations, slots):
        """Exact makespan obeys the classic list-scheduling bounds."""
        s = BlockScheduler()
        d = np.array(durations)
        res = s.makespan(d, None, slots, force="exact")
        lower = max(d.max(), d.sum() / slots)
        upper = d.sum() / slots + d.max()
        assert lower - 1e-12 <= res.makespan <= upper + 1e-12

    @given(
        durations=st.lists(st.floats(0.01, 5.0), min_size=1, max_size=40),
        slots=st.integers(1, 16),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_analytic_within_bounds(self, durations, slots):
        s = BlockScheduler()
        d = np.array(durations)
        res = s.makespan(d, None, slots, force="analytic")
        assert res.makespan >= max(d.max(), d.sum() / slots) - 1e-12
        assert res.makespan <= d.sum() / slots + d.max() + 1e-12


class _ToyKernel(Kernel):
    """Minimal kernel for Device tests: N identical compute blocks."""

    name = "toy"

    def __init__(self, nblocks=15, flops=1e6, bytes_=0.0, threads=128,
                 shared=0, precision=Precision.D, etm="classic",
                 active=None, serial=0.0):
        self.etm_mode = etm
        super().__init__()
        self._prec = precision
        self.nblocks = nblocks
        self.flops = flops
        self.bytes_ = bytes_
        self.threads = threads
        self.shared = shared
        self.active = active
        self.serial = serial
        self.ran = False

    @property
    def precision(self):
        return self._prec

    def launch_config(self):
        return LaunchConfig(self.threads, self.shared)

    def block_works(self):
        return [
            BlockWork(self.flops, self.bytes_, serial_iters=self.serial,
                      active_threads=self.active, count=self.nblocks)
        ]

    def run_numerics(self):
        self.ran = True


class TestDeviceLaunch:
    def test_launch_advances_time(self):
        dev = Device()
        rec = dev.launch(_ToyKernel())
        assert rec.duration > 0
        assert dev.synchronize() >= rec.end

    def test_numerics_executed_by_default(self):
        dev = Device()
        k = _ToyKernel()
        dev.launch(k)
        assert k.ran

    def test_numerics_skippable(self):
        dev = Device(execute_numerics=False)
        k = _ToyKernel()
        dev.launch(k)
        assert not k.ran

    def test_launch_overhead_floor(self):
        """An empty kernel still costs the launch overhead."""
        dev = Device()
        dev.launch(_ToyKernel(nblocks=1, flops=0.0))
        assert dev.synchronize() >= dev.spec.kernel_launch_overhead

    def test_more_work_takes_longer(self):
        d1 = Device()
        d1.launch(_ToyKernel(flops=1e6))
        t1 = d1.synchronize()
        d2 = Device()
        d2.launch(_ToyKernel(flops=1e9))
        t2 = d2.synchronize()
        assert t2 > t1

    def test_double_precision_slower_than_single(self):
        ds = Device()
        ds.launch(_ToyKernel(flops=1e9, precision=Precision.S))
        dd = Device()
        dd.launch(_ToyKernel(flops=1e9, precision=Precision.D))
        assert dd.synchronize() > ds.synchronize()

    def test_memory_bound_kernel(self):
        dev = Device()
        compute = _ToyKernel(flops=1e3, bytes_=1e8)
        rec = dev.launch(compute)
        # 15 blocks x 1e8 B at ~216 GB/s >> compute time
        assert rec.duration > 15 * 1e8 / dev.spec.global_mem_bandwidth / 16

    def test_terminated_blocks_cost_only_overhead(self):
        dev = Device()
        live = dev.launch(_ToyKernel(flops=1e9))
        dev.reset_clock()
        dead = dev.launch(_ToyKernel(flops=1e9, active=0))
        assert dead.duration < live.duration / 10

    def test_aggressive_beats_classic_with_idle_threads(self):
        """Paper §IV-D: ETM-aggressive 11-35% faster when threads idle."""
        base = dict(nblocks=450, flops=1e7, threads=128, active=48)
        dc = Device()
        dc.launch(_ToyKernel(etm="classic", **base))
        tc = dc.synchronize()
        da = Device()
        da.launch(_ToyKernel(etm="aggressive", **base))
        ta = da.synchronize()
        assert ta < tc
        assert 1.05 < tc / ta < 1.8

    def test_no_penalty_when_all_threads_active(self):
        base = dict(nblocks=60, flops=1e7, threads=128, active=128)
        dc = Device()
        dc.launch(_ToyKernel(etm="classic", **base))
        da = Device()
        da.launch(_ToyKernel(etm="aggressive", **base))
        assert dc.synchronize() == pytest.approx(da.synchronize())

    def test_serial_iters_add_latency(self):
        dev = Device()
        fast = dev.launch(_ToyKernel(nblocks=1, flops=0.0, serial=0.0))
        dev.reset_clock()
        slow = dev.launch(_ToyKernel(nblocks=1, flops=0.0, serial=1000.0))
        expected = (
            1000 * dev.calibration.serial_op_latency * dev.calibration.serial_fp64_scale
        )  # the toy kernel runs in double precision
        assert slow.duration - fast.duration == pytest.approx(expected, rel=1e-6)

    def test_serial_latency_fp64_scale(self):
        ds = Device()
        rs = ds.launch(_ToyKernel(nblocks=1, flops=0.0, serial=1000.0, precision=Precision.S))
        dd = Device()
        rd = dd.launch(_ToyKernel(nblocks=1, flops=0.0, serial=1000.0, precision=Precision.D))
        assert rd.duration > rs.duration

    def test_shared_memory_reduces_occupancy_and_throughput(self):
        """Big smem footprint (1 block/SM) hurts latency hiding."""
        light = Device()
        light.launch(_ToyKernel(nblocks=240, flops=1e8, shared=0))
        heavy = Device()
        heavy.launch(_ToyKernel(nblocks=240, flops=1e8, shared=40 * 1024))
        assert heavy.synchronize() > light.synchronize()

    def test_launch_records_kept(self):
        dev = Device()
        dev.launch(_ToyKernel())
        dev.launch(_ToyKernel())
        assert len(dev.launches) == 2
        assert dev.launches[0].kernel_name == "toy"
        assert dev.launches[0].blocks == 15

    def test_reset_clock(self):
        dev = Device()
        dev.launch(_ToyKernel())
        dev.reset_clock()
        assert dev.synchronize() == 0.0
        assert dev.launches == []

    def test_invalid_etm_mode_rejected(self):
        with pytest.raises(ValueError, match="etm_mode"):
            _ToyKernel(etm="bogus")


class TestStreamsAndTransfers:
    def test_same_stream_serializes(self):
        dev = Device()
        r1 = dev.launch(_ToyKernel(flops=1e8))
        r2 = dev.launch(_ToyKernel(flops=1e8))
        assert r2.start >= r1.end

    def test_different_streams_overlap(self):
        dev = Device()
        s1, s2 = dev.create_stream(), dev.create_stream()
        # Tiny kernels: SM area is small, so overlap is real.
        r1 = dev.launch(_ToyKernel(nblocks=1, flops=1e7), stream=s1)
        r2 = dev.launch(_ToyKernel(nblocks=1, flops=1e7), stream=s2)
        assert r2.start < r1.end

    def test_area_serialization_under_saturation(self):
        """Two device-filling kernels cannot truly overlap."""
        dev = Device()
        s1, s2 = dev.create_stream(), dev.create_stream()
        k = dict(nblocks=1000, flops=1e8)
        dev.launch(_ToyKernel(**k), stream=s1)
        dev.launch(_ToyKernel(**k), stream=s2)
        two_stream = dev.synchronize()
        serial = Device()
        serial.launch(_ToyKernel(**k))
        serial.launch(_ToyKernel(**k))
        assert two_stream >= 0.9 * serial.synchronize() / 1.1

    def test_sm_area_frontier_shared_across_streams(self):
        """`_sm_area_free_at` is one frontier for the whole machine: a
        launch on any stream pushes it, and the next launch on a
        *different* stream starts its SM occupation behind it."""
        dev = Device(execute_numerics=False)
        s1, s2 = dev.create_stream(), dev.create_stream()
        r1 = dev.launch(_ToyKernel(nblocks=1000, flops=1e8), stream=s1)
        area_after_one = dev._sm_area_free_at
        assert area_after_one > r1.start
        r2 = dev.launch(_ToyKernel(nblocks=1000, flops=1e8), stream=s2)
        area_after_two = dev._sm_area_free_at
        assert area_after_two > area_after_one
        # The second kernel cannot finish before the area the first
        # consumed has drained, even though its stream was idle.
        assert r2.end >= area_after_one
        # synchronize() waits for the shared frontier, not just streams.
        assert dev.synchronize() >= area_after_two

    def test_n_streams_no_faster_than_serial_when_saturated(self):
        """Fanning saturating kernels over N streams cannot beat the
        same sequence on one stream by more than launch overhead."""
        k = dict(nblocks=2000, flops=5e7)
        fan = Device(execute_numerics=False)
        for _ in range(4):
            fan.launch(_ToyKernel(**k), stream=fan.create_stream())
        serial = Device(execute_numerics=False)
        for _ in range(4):
            serial.launch(_ToyKernel(**k))
        t_fan, t_serial = fan.synchronize(), serial.synchronize()
        # Streams can hide launch overhead and wave-imbalance tails but
        # never the SM-area itself: nowhere near 4x scaling.
        assert t_fan >= 0.8 * t_serial
        assert t_fan <= t_serial

    def test_reset_clock_clears_sm_area_frontier(self):
        dev = Device(execute_numerics=False)
        dev.launch(_ToyKernel(nblocks=1000, flops=1e8))
        assert dev._sm_area_free_at > 0
        dev.reset_clock()
        assert dev._sm_area_free_at == 0.0

    def test_upload_download_roundtrip(self):
        dev = Device()
        host = np.arange(12, dtype=np.float64).reshape(3, 4)
        darr = dev.upload(host)
        t_after_upload = dev.synchronize()
        assert t_after_upload > 0
        back = dev.download(darr)
        np.testing.assert_array_equal(back, host)
        assert dev.synchronize() > t_after_upload

    def test_upload_without_numerics_keeps_timing(self):
        dev = Device(execute_numerics=False)
        host = np.ones((100, 100))
        dev.upload(host)
        assert dev.synchronize() >= host.nbytes / dev.spec.pcie_bandwidth

    def test_events(self):
        dev = Device()
        s = dev.create_stream()
        e0 = s.record_event()
        dev.launch(_ToyKernel(flops=1e8), stream=s)
        e1 = s.record_event()
        assert e1.elapsed_since(e0) > 0

    def test_wait_event_orders_streams(self):
        dev = Device()
        s1, s2 = dev.create_stream(), dev.create_stream()
        dev.launch(_ToyKernel(flops=1e9), stream=s1)
        ev = s1.record_event()
        s2.wait_event(ev)
        r2 = dev.launch(_ToyKernel(nblocks=1, flops=1e3), stream=s2)
        assert r2.start >= ev.timestamp

    def test_wait_unrecorded_event_raises(self):
        dev = Device()
        s = dev.create_stream()
        from repro.device.stream import Event

        with pytest.raises(StreamError):
            s.wait_event(Event(s, None))


class TestGpuPower:
    def test_power_bounds(self):
        assert K40C_POWER.power(0.0) == pytest.approx(25.0)
        # Full slot occupancy draws idle + activity-scaled dynamic range.
        expected = 25.0 + (235.0 - 25.0) * K40C_POWER.activity_scale
        assert K40C_POWER.power(1.0) == pytest.approx(expected)
        assert K40C_POWER.power(1.0) <= 235.0

    def test_power_validates_utilization(self):
        with pytest.raises(ValueError):
            K40C_POWER.power(1.2)

    def test_energy_integrates_idle_gap(self):
        tl = Timeline()
        tl.record(0.0, 1.0, "kernel:x", utilization=1.0)
        # 1s at full-activity draw + 1s idle at 25W
        busy = K40C_POWER.power(1.0)
        assert K40C_POWER.energy(tl, total_time=2.0) == pytest.approx(busy + 25.0)

    def test_busy_device_uses_more_energy(self):
        dev = Device()
        dev.launch(_ToyKernel(flops=1e9))
        t = dev.synchronize()
        busy = K40C_POWER.energy(dev.timeline, t)
        assert busy > K40C_POWER.idle_watts * t

    def test_model_validation(self):
        with pytest.raises(ValueError):
            GpuPowerModel(idle_watts=100.0, max_watts=50.0)
