"""Smoke tests: every shipped example must run clean end to end.

Each example's ``main`` carries its own assertions (residuals, target
recovery, stability), so running it is a genuine integration test of
the public API on a realistic workload.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "fem_hydrodynamics",
        "rx_anomaly_detection",
        "chemical_kinetics_lu",
        "multifrontal_solver",
        "sensor_least_squares",
        "autotune_and_deploy",
        "multi_device_sharding",
        "serving_throughput",
    ],
)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), "examples must report their results"


def test_figure_tour_reduced(capsys):
    module = _load("figure_tour")
    module.main(full=False)
    out = capsys.readouterr().out
    assert "Fig 8" in out and "Fig 10" in out
