"""Tests for the adaptive serving subsystem (online autotuning).

Covers the pieces in isolation — fingerprint stability under
Hypothesis, controller guard rails under seeded adversarial reward
sequences, tuning-cache concurrency — and the closed loop end to end:
a cold server converging and persisting winners, then a warm server
replaying the same trace with zero exploration batches.
"""

import json
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.adaptive import (
    Controller,
    FingerprintBuilder,
    OnlineTuner,
    WorkloadFingerprint,
    check_adaptive_acceptance,
)
from repro.adaptive.bench import (
    _bursty_workload,
    _closed_loop_ops,
    _diurnal_workload,
    _make_server,
    _uniform_workload,
)
from repro.adaptive.fingerprint import _RATE_BAND_MAX, _RATE_BAND_MIN
from repro.autotune import TuningCache

# ---------------------------------------------------------------------------
# fingerprint stability
# ---------------------------------------------------------------------------

_SIZES = st.lists(st.integers(min_value=1, max_value=512), min_size=1, max_size=64)
_OPS = st.sampled_from(["potrf", "geqrf", "gesvd"])


@given(sizes=_SIZES, data=st.data())
@settings(max_examples=50, deadline=None)
def test_fingerprint_permutation_invariant(sizes, data):
    ops = [data.draw(_OPS) for _ in sizes]
    fp = WorkloadFingerprint.from_requests(sizes, ops, window_sim_s=1.0)
    order = data.draw(st.permutations(list(range(len(sizes)))))
    shuffled = WorkloadFingerprint.from_requests(
        [sizes[i] for i in order], [ops[i] for i in order], window_sim_s=1.0
    )
    assert fp == shuffled


@given(sizes=_SIZES, data=st.data())
@settings(max_examples=50, deadline=None)
def test_fingerprint_duplication_invariant(sizes, data):
    """Twice the same traffic in twice the time is the same workload."""
    ops = [data.draw(_OPS) for _ in sizes]
    fp = WorkloadFingerprint.from_requests(sizes, ops, window_sim_s=0.5)
    doubled = WorkloadFingerprint.from_requests(
        sizes * 2, ops * 2, window_sim_s=1.0
    )
    assert fp == doubled


@given(
    count=st.integers(min_value=1, max_value=10_000),
    window=st.floats(min_value=1e-9, max_value=1e6),
)
@settings(max_examples=100, deadline=None)
def test_fingerprint_rate_band_bounded(count, window):
    fp = WorkloadFingerprint.from_requests(
        [8] * count, ["potrf"] * count, window_sim_s=window
    )
    assert _RATE_BAND_MIN <= fp.rate_band <= _RATE_BAND_MAX


def test_fingerprint_rate_band_boundaries():
    mk = lambda rate: WorkloadFingerprint.from_requests(
        [8] * 1024, ["potrf"] * 1024, window_sim_s=1024.0 / rate
    ).rate_band
    assert mk(1.0) == 0
    assert mk(2.0) == 1
    assert mk(4096.0) == 12
    # Clamps at both ends rather than running away.
    assert mk(1e-12) == _RATE_BAND_MIN
    assert mk(1e30) == _RATE_BAND_MAX


def test_fingerprint_rejects_bad_input():
    with pytest.raises(ValueError):
        WorkloadFingerprint.from_requests([], [], window_sim_s=1.0)
    with pytest.raises(ValueError):
        WorkloadFingerprint.from_requests([8], [], window_sim_s=1.0)


def test_similar_to_tolerates_one_level_wobble():
    a = WorkloadFingerprint(((5, 4), (6, 4)), (("potrf", 8),), 10)
    b = WorkloadFingerprint(((5, 3), (6, 5)), (("potrf", 8),), 14)
    c = WorkloadFingerprint(((5, 1), (6, 7)), (("potrf", 8),), 10)
    assert a.similar_to(b)  # one level off per bucket, rate ignored
    assert not a.similar_to(c)
    assert a.similar_to(c, tolerance=3)
    # A bucket present on one side only counts as level 0 on the other.
    d = WorkloadFingerprint(((5, 4), (6, 4), (2, 1)), (("potrf", 8),), 10)
    assert a.similar_to(d)


def test_builder_sliding_window_forgets_old_phase():
    builder = FingerprintBuilder(window=64)
    for i in range(64):
        builder.observe_request(8, "potrf", float(i))
    before = builder.snapshot()
    for i in range(64):
        builder.observe_request(200, "geqrf", 64.0 + i)
    after = builder.snapshot()
    assert before is not None and after is not None
    assert not before.similar_to(after)
    assert after.op_mix == (("geqrf", 8),)


# ---------------------------------------------------------------------------
# controller guard rails
# ---------------------------------------------------------------------------


def test_controller_rollback_on_regression():
    c = Controller(name="k", arms=("good", "bad"), min_dwell=1, converged_after=4)
    # Establish the incumbent, then follow UCB onto the unexplored arm.
    c.observe(100.0)
    assert c.current == "bad"
    d = c.observe(10.0)  # adversarial: the new arm craters
    assert d.action == "rollback"
    assert c.current == "good"
    assert c.rollbacks == 1
    assert c.stats("bad").penalty > 0


def test_controller_rollback_respects_ratio():
    c = Controller(
        name="k", arms=("a", "b"), min_dwell=1, rollback_ratio=0.5, converged_after=8
    )
    c.observe(100.0)
    assert c.current == "b"
    d = c.observe(60.0)  # regressed, but within the 50% band
    assert d.action != "rollback"


def test_controller_flat_rewards_converge():
    """Indifference hold: equal arms must not ping-pong forever."""
    c = Controller(name="k", arms=("a", "b", "c"), min_dwell=1, converged_after=3)
    for _ in range(40):
        if c.converged:
            break
        c.observe(50.0)
    assert c.converged
    assert c.switches <= len(c.arms) + 1


def test_controller_min_dwell_holds():
    c = Controller(name="k", arms=("a", "b"), min_dwell=3, converged_after=8)
    assert c.observe(1.0).action == "hold"
    assert c.observe(1.0).action == "hold"
    assert c.current == "a"


def test_controller_reset_clears_learning():
    c = Controller(name="k", arms=("a", "b"), min_dwell=1)
    for _ in range(10):
        c.observe(5.0)
    c.reset()
    assert not c.converged
    assert c.total_pulls == 0
    assert all(c.stats(a).penalty == 0 for a in c.arms)


def test_controller_force_pins_winner():
    c = Controller(name="k", arms=("a", "b"))
    c.force("b", converged=True)
    assert c.current == "b" and c.converged
    assert c.observe(1.0).action == "converged"
    with pytest.raises(ValueError):
        c.force("nope")


@given(
    rewards=st.lists(
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        min_size=1,
        max_size=60,
    ),
    seed=st.integers(min_value=0, max_value=7),
)
@settings(max_examples=60, deadline=None)
def test_controller_invariants_under_adversarial_rewards(rewards, seed):
    c = Controller(name="k", arms=(16, 32, 64), min_dwell=1, seed=seed,
                   converged_after=3)
    for r in rewards:
        d = c.observe(r)
        assert d.arm in c.arms
        assert c.current in c.arms
        if c.converged:
            # Convergence requires full coverage and then never unfreezes.
            assert all(c.stats(a).pulls > 0 for a in c.arms)
            assert d.arm == c.current
    assert c.total_pulls == len(rewards)


# ---------------------------------------------------------------------------
# tuning cache: concurrency + atomic persistence
# ---------------------------------------------------------------------------


def test_tuning_cache_concurrent_writers(tmp_path):
    path = tmp_path / "cache.json"
    cache = TuningCache(path=str(path))
    errors = []

    def writer(i: int) -> None:
        try:
            for j in range(20):
                cache.put_entry(f"adaptive:dev:{i}:{j}", {"knobs": {"mb": i * j}})
        except Exception as exc:  # pragma: no cover - the assertion payload
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # Every write landed and the file on disk is one valid JSON document
    # (writes go to a temp file then os.replace, so no torn state).
    on_disk = json.loads(path.read_text())
    assert len(on_disk) == 8 * 20
    reloaded = TuningCache(path=str(path))
    assert reloaded.get_entry("adaptive:dev:7:19") == {"knobs": {"mb": 133}}


# ---------------------------------------------------------------------------
# the closed loop: converge -> persist -> warm restart
# ---------------------------------------------------------------------------

_TUNER_OPTIONS = {"knobs": "compact", "epoch_batches": 4, "converged_after": 2}


def _run(workload, *, cache, concurrency=96):
    server = _make_server(
        "t", device_count=1, adaptive=True, tuning_cache=cache,
        adaptive_options=dict(_TUNER_OPTIONS),
    )
    _closed_loop_ops(server, workload, concurrency)
    snap = server.tuner.snapshot()
    server.shutdown()
    return snap


def test_tuner_converges_persists_and_warm_starts(tmp_path):
    cache = TuningCache(path=str(tmp_path / "cache.json"))
    workload = _uniform_workload(2500, seed=3)

    cold = _run(workload, cache=cache)
    assert cold["state"] == "converged"
    assert cold["exploration_batches"] > 0
    assert len(cache) == 1

    warm = _run(workload, cache=cache)
    assert warm["state"] == "converged"
    assert warm["exploration_batches"] == 0
    assert all(k["converged"] for k in warm["knobs"].values())
    # The warm run exploits the cold run's winners, not its own search.
    cold_winners = {k: v["current"] for k, v in cold["knobs"].items()}
    warm_winners = {k: v["current"] for k, v in warm["knobs"].items()}
    assert warm_winners == cold_winners


def test_tuner_records_autotune_metrics(tmp_path):
    cache = TuningCache(path=str(tmp_path / "cache.json"))
    server = _make_server(
        "t", device_count=1, adaptive=True, tuning_cache=cache,
        adaptive_options=dict(_TUNER_OPTIONS),
    )
    _closed_loop_ops(server, _uniform_workload(1500, seed=5), 96)
    registry = server.metrics.registry
    epochs = registry.get("autotune_epochs_total").value()
    decisions = registry.get("autotune_decisions_total").items()
    converged = registry.get("autotune_converged").value()
    exposition = registry.expose()
    server.shutdown()
    assert epochs > 0
    assert decisions  # at least one (knob, action) pair credited
    assert converged in (0, 1)
    assert "autotune_epochs_total" in exposition


def test_adaptive_off_has_no_tuner():
    server = _make_server("t", device_count=1)
    try:
        assert server.tuner is None
    finally:
        server.shutdown()


def test_trace_report_renders_adaptive_decisions(tmp_path):
    """Tuner decisions land on the trace and in the rendered report."""
    from repro.observability import (
        Tracer, activate, analyze_trace, format_trace_report,
    )

    cache = TuningCache(path=str(tmp_path / "cache.json"))
    tracer = Tracer()
    with activate(tracer):
        server = _make_server(
            "t", device_count=1, adaptive=True, tuning_cache=cache,
            adaptive_options=dict(_TUNER_OPTIONS),
        )
        _closed_loop_ops(server, _uniform_workload(1500, seed=5), 96)
        snap = server.tuner.snapshot()
        server.shutdown()

    analysis = analyze_trace(tracer)
    assert analysis.adaptive, "no adaptive events reached the trace"
    report = next(iter(analysis.adaptive.values()))
    assert report.decisions >= 1
    assert report.decisions == sum(report.actions.values())
    assert report.explore_starts >= 1
    if snap["state"] == "converged":
        assert report.convergences >= 1
        winners = {k: str(v["current"]) for k, v in snap["knobs"].items()}
        assert {k: str(v) for k, v in report.final_knobs.items()} == winners

    text = format_trace_report(analysis)
    assert "adaptive decisions" in text
    assert "final knob settings" in text


# ---------------------------------------------------------------------------
# bench plumbing
# ---------------------------------------------------------------------------


def test_workload_builders_shapes():
    uni = _uniform_workload(500, seed=0)
    assert len(uni) == 500
    assert all(1 <= n <= 96 and op == "potrf" for n, op in uni)

    bursty = _bursty_workload(500, seed=0)
    assert len(bursty) == 500
    from repro.adaptive.bench import _BURST_LARGE, _BURST_SMALL

    assert all(n in _BURST_SMALL + _BURST_LARGE for n, _ in bursty)

    diurnal = _diurnal_workload(1000, seed=0)
    assert len(diurnal) == 1000
    ops_by_phase = (
        {op for _, op in diurnal[:400]},
        {op for _, op in diurnal[400:800]},
        {op for _, op in diurnal[800:]},
    )
    assert ops_by_phase[0] == {"potrf"}
    assert ops_by_phase[1] == {"potrf", "geqrf"}
    assert ops_by_phase[2] == {"potrf"}


def _fake_report(*, warm_ratio=1.2, warm_waste=0.0, best_waste=0.0,
                 explored=0, warm_vs_cold=1.0, strict=True):
    return {
        "mixes": {
            "uniform": {
                "comparison": {
                    "best_static": "greedy-window",
                    "best_static_throughput": 1000.0,
                    "best_static_waste": best_waste,
                    "warm_vs_best_static": warm_ratio,
                    "warm_waste_ratio": warm_waste,
                    "warm_vs_cold": warm_vs_cold,
                    "warm_exploration_batches": explored,
                    "strictly_beats_all_statics": strict,
                },
            },
        },
    }


def test_acceptance_passes_clean_report():
    assert check_adaptive_acceptance(_fake_report()) == []


def test_acceptance_flags_each_violation():
    assert check_adaptive_acceptance(_fake_report(warm_ratio=0.8))
    assert check_adaptive_acceptance(_fake_report(warm_waste=0.3))
    assert check_adaptive_acceptance(_fake_report(explored=5))
    assert check_adaptive_acceptance(_fake_report(warm_vs_cold=0.5))
    # The strict-win requirement is cross-mix and kicks in at >= 2 mixes.
    no_strict = _fake_report(strict=False)
    no_strict["mixes"]["bursty"] = no_strict["mixes"]["uniform"]
    assert check_adaptive_acceptance(no_strict) == [
        "no mix where adaptive strictly beats every static"
    ]


def test_tuner_rejects_bad_epoch_batches():
    server = _make_server("t", device_count=1)
    try:
        with pytest.raises(ValueError):
            OnlineTuner(server, epoch_batches=0)
    finally:
        server.shutdown()
