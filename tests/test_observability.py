"""Tests for the observability subsystem: metrics registry + tracer.

Covers the registry primitives and their Prometheus exposition, span
nesting and cross-thread context propagation, the executor / plan-cache
instrumentation (simulated-clock spans must mirror the device's own
records exactly), and — the critical invariant — that an *active*
tracer leaves the simulated timing byte-identical: the figure snapshots
must not move when tracing is on.
"""

import concurrent.futures

import pytest

from repro.core.driver import LaunchStats
from repro.core.plan import PlanBuilder, PlanCache
from repro.device import Device, PlanExecutor, execute_concurrently
from repro.device.kernel import BlockWork, Kernel, LaunchConfig
from repro.errors import ArgumentError
from repro.observability import (
    NULL_TRACER,
    SIM,
    WALL,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Summary,
    Tracer,
    Track,
    activate,
    current_tracer,
    latency_summary,
    percentile,
    propagating,
)
from repro.types import Precision


class _ToyKernel(Kernel):
    name = "toy"

    def __init__(self, nblocks=4, flops=1e6):
        super().__init__()
        self.nblocks = nblocks
        self.flops = flops

    @property
    def precision(self):
        return Precision.D

    def launch_config(self):
        return LaunchConfig(128, 0)

    def block_works(self):
        return [BlockWork(self.flops, 0.0, count=self.nblocks)]

    def run_numerics(self):
        pass


# ---------------------------------------------------------------------------
# registry primitives
# ---------------------------------------------------------------------------
class TestQuantileHelpers:
    def test_percentile_empty_is_zero(self):
        assert percentile([], 95) == 0.0

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 50) == pytest.approx(5.0)

    def test_latency_summary_shape(self):
        s = latency_summary([1.0, 2.0, 3.0])
        assert s["count"] == 3 and s["mean"] == pytest.approx(2.0)
        assert s["p50"] == pytest.approx(2.0) and s["max"] == 3.0

    def test_latency_summary_empty(self):
        assert latency_summary([]) == {
            "count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0
        }


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("requests_total")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_negative_inc_rejected(self):
        with pytest.raises(ArgumentError):
            Counter("x").inc(-1)

    def test_labels_partition_values(self):
        c = Counter("outcomes_total", labels=("outcome",))
        c.inc(outcome="ok")
        c.inc(3, outcome="fail")
        assert c.value(outcome="ok") == 1 and c.value(outcome="fail") == 3

    def test_wrong_labels_rejected(self):
        c = Counter("outcomes_total", labels=("outcome",))
        with pytest.raises(ArgumentError):
            c.inc(flavor="nope")

    def test_bad_name_rejected(self):
        with pytest.raises(ArgumentError):
            Counter("has spaces")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value() == 6.0


class TestHistogram:
    def test_cumulative_counts(self):
        h = Histogram("sizes", buckets=(1, 4, 16))
        for v in (1, 2, 5, 100):
            h.observe(v)
        snap = h.counts()
        assert snap["buckets"] == {1.0: 1, 4.0: 2, 16.0: 3}
        assert snap["count"] == 4 and snap["sum"] == 108.0

    def test_exposition_has_inf_bucket(self):
        h = Histogram("sizes", buckets=(2,))
        h.observe(10)
        text = "\n".join(h.expose())
        assert 'sizes_bucket{le="+Inf"} 1' in text
        assert "sizes_count 1" in text

    def test_needs_buckets(self):
        with pytest.raises(ArgumentError):
            Histogram("empty", buckets=())


class TestSummary:
    def test_exact_percentiles(self):
        s = Summary("lat")
        for v in range(101):
            s.observe(v / 100)
        assert s.percentile(95) == pytest.approx(0.95)
        assert s.summary()["p50"] == pytest.approx(0.50)
        assert s.mean() == pytest.approx(0.50)
        assert s.max() == 1.0 and s.count() == 101

    def test_labelled_channels_stay_apart(self):
        s = Summary("lat", labels=("clock",))
        s.observe(1.0, clock="wall")
        s.observe(9.0, clock="sim")
        assert s.values(clock="wall") == [1.0]
        assert s.summary(clock="sim")["max"] == 9.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_metric(self):
        r = MetricsRegistry()
        assert r.counter("a_total") is r.counter("a_total")
        assert len(r) == 1 and "a_total" in r

    def test_kind_conflict_rejected(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(ArgumentError):
            r.gauge("x")

    def test_label_conflict_rejected(self):
        r = MetricsRegistry()
        r.counter("x", labels=("a",))
        with pytest.raises(ArgumentError):
            r.counter("x", labels=("b",))

    def test_expose_prometheus_text(self):
        r = MetricsRegistry()
        r.counter("reqs_total", "requests", labels=("outcome",)).inc(outcome="ok")
        r.gauge("depth", "queue depth").set(3)
        text = r.expose()
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{outcome="ok"} 1' in text
        assert "# HELP depth queue depth" in text and "depth 3" in text

    def test_expose_prefix_filter(self):
        r = MetricsRegistry()
        r.counter("aa_total").inc()
        r.counter("bb_total").inc()
        assert "bb_total" not in r.expose(prefix="aa")

    def test_as_dict_scalars_only(self):
        r = MetricsRegistry()
        r.counter("plain").inc(2)
        r.counter("labelled", labels=("l",)).inc(l="x")
        r.summary("s").observe(1.0)
        assert r.as_dict() == {"plain": 2.0}


# ---------------------------------------------------------------------------
# tracer: context, nesting, propagation
# ---------------------------------------------------------------------------
class TestNullTracer:
    def test_default_tracer_is_null_and_falsy(self):
        assert current_tracer() is NULL_TRACER
        assert not NULL_TRACER and NULL_TRACER.enabled is False

    def test_all_hooks_are_noops(self):
        with NULL_TRACER.span("x") as extra:
            extra["ignored"] = 1
        NULL_TRACER.add_span("x", Track("p"), 0.0, 1.0)
        NULL_TRACER.instant("x", Track("p"))
        NULL_TRACER.counter("x", Track("p"), {"v": 1})


class TestTracer:
    def test_activate_scopes_the_tracer(self):
        tr = Tracer()
        with activate(tr):
            assert current_tracer() is tr
        assert current_tracer() is NULL_TRACER

    def test_span_nesting_records_parent_ids(self):
        clock = iter(range(100))
        tr = Tracer(wall_clock=lambda: float(next(clock)))
        with tr.span("outer", Track("p")):
            with tr.span("inner", Track("p")) as extra:
                extra["depth"] = 2
        inner, outer = tr.spans()  # inner closes (and records) first
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.parent_id == outer.span_id and outer.parent_id is None
        assert inner.args == {"depth": 2}
        assert inner.clock == WALL and outer.duration == 3.0

    def test_add_span_inherits_open_parent(self):
        tr = Tracer()
        with tr.span("outer", Track("p")):
            ev = tr.add_span("k", Track("dev", "stream0"), 1.0, 2.0, cat="fused")
        assert ev.clock == SIM and ev.parent_id is not None

    def test_instant_and_counter(self):
        tr = Tracer(wall_clock=lambda: 5.0)
        tr.instant("mark", Track("p"), args={"n": 1})
        tr.counter("depth", Track("p"), {"pending": 3})
        mark, depth = tr.snapshot()
        assert mark.phase == "instant" and mark.start == 5.0
        assert depth.phase == "counter" and depth.args == {"pending": 3.0}

    def test_spans_filters_by_cat(self):
        tr = Tracer()
        tr.add_span("a", Track("p"), 0, 1, cat="fused")
        tr.add_span("b", Track("p"), 0, 1, cat="wait")
        assert [e.name for e in tr.spans("wait")] == ["b"]

    def test_propagating_carries_context_into_pool_threads(self):
        tr = Tracer()
        seen = {}

        def probe():
            seen["tracer"] = current_tracer()
            tr.add_span("k", Track("d", "stream0"), 0.0, 1.0)

        with activate(tr):
            with tr.span("dispatch", Track("s")):
                with concurrent.futures.ThreadPoolExecutor(1) as pool:
                    pool.submit(propagating(probe)).result()
        assert seen["tracer"] is tr
        k, dispatch = tr.spans()
        assert k.parent_id == dispatch.span_id  # nested across the thread hop


# ---------------------------------------------------------------------------
# executor + plan-cache instrumentation
# ---------------------------------------------------------------------------
class TestExecutorTracing:
    def test_sim_spans_mirror_execution_stats(self):
        dev = Device(execute_numerics=False)
        pb = PlanBuilder(dev)
        for s in (1, 2):
            pb.launch(_ToyKernel(flops=1e7), stream=s)
        pb.barrier()
        tr = Tracer()
        with activate(tr):
            stats = PlanExecutor(dev).execute(pb.build())
        kernel_spans = tr.spans("kernel")
        assert len(kernel_spans) == stats.launches == 2
        sync = dev.synchronize()
        for span in kernel_spans:
            assert span.clock == SIM
            assert span.track.thread.startswith("stream")
            assert 0.0 <= span.start < span.end <= sync
        # Span stamps are the device's own LaunchRecords, verbatim.
        recorded = {(r.start, r.end) for r in dev.launches}
        assert {(s.start, s.end) for s in kernel_spans} <= recorded
        assert len(tr.spans("barrier")) == stats.barriers == 1

    def test_empty_plan_reports_zero_streams(self):
        dev = Device(execute_numerics=False)
        stats = PlanExecutor(dev).execute(PlanBuilder(dev).build())
        assert stats.streams_used == 0 and stats.launches == 0

    def test_cross_stream_dep_counts_event_traffic(self):
        dev = Device(execute_numerics=False)
        pb = PlanBuilder(dev)
        a = pb.launch(_ToyKernel(flops=1e8), stream=1)
        pb.launch(_ToyKernel(nblocks=1, flops=1e3), stream=2, after=(a,))
        tr = Tracer()
        with activate(tr):
            stats = PlanExecutor(dev).execute(pb.build())
        assert stats.event_waits == 1 and stats.events_recorded == 1
        waits = tr.spans("wait")
        assert len(waits) == 1 and waits[0].clock == SIM

    def test_concurrent_shards_nest_under_dispatch_span(self):
        devs = [Device(execute_numerics=False, name=f"t:dev{i}") for i in range(2)]
        plans = []
        for dev in devs:
            pb = PlanBuilder(dev)
            pb.launch(_ToyKernel(flops=1e7))
            plans.append(pb.build())
        tr = Tracer()
        with activate(tr):
            with tr.span("dispatch", Track("t:serving", "dispatch"), cat="dispatch"):
                execute_concurrently(plans)
        dispatch = tr.spans("dispatch")[0]
        kernels = tr.spans("kernel")
        assert len(kernels) == 2
        assert {k.track.process for k in kernels} == {"t:dev0", "t:dev1"}
        assert all(k.parent_id == dispatch.span_id for k in kernels)

    def test_execution_stats_publish(self):
        dev = Device(execute_numerics=False)
        pb = PlanBuilder(dev)
        pb.launch(_ToyKernel(), tag="potf2")
        pb.barrier()
        stats = PlanExecutor(dev).execute(pb.build())
        r = MetricsRegistry()
        stats.publish(r)
        assert r.counter("executor_launches_total").value() == 1
        assert r.counter("executor_barriers_total").value() == 1


class TestPlanCacheTracing:
    def _plan_once(self, cache, dev, batch, max_n):
        from repro.core.driver import PotrfOptions, plan_potrf

        return plan_potrf(dev, batch, max_n, PotrfOptions(), plan_cache=cache)

    def test_hit_miss_instants_and_build_span(self):
        from repro.core.batch import VBatch

        dev = Device(execute_numerics=False, name="c:dev0")
        batch = VBatch.allocate(dev, [8, 12, 16], "d")
        cache = PlanCache()
        tr = Tracer()
        with activate(tr):
            self._plan_once(cache, dev, batch, 16)
            self._plan_once(cache, dev, batch, 16)
        names = [e.name for e in tr.snapshot() if e.cat == "plan-cache"]
        assert names == ["plan-cache-miss", "plan-cache-hit"]
        builds = tr.spans("plan")
        assert len(builds) == 1 and builds[0].clock == WALL
        assert builds[0].args["nodes"] > 0
        assert builds[0].track.process == "c:dev0"

    def test_publish_gauges(self):
        from repro.core.batch import VBatch

        dev = Device(execute_numerics=False)
        batch = VBatch.allocate(dev, [8, 12], "d")
        cache = PlanCache()
        self._plan_once(cache, dev, batch, 12)
        self._plan_once(cache, dev, batch, 12)
        r = MetricsRegistry()
        cache.publish(r)
        vals = r.as_dict()
        assert vals["plan_cache_hits"] == 1 and vals["plan_cache_misses"] == 1
        assert vals["plan_cache_size"] == 1
        assert vals["plan_cache_hit_ratio"] == pytest.approx(0.5)
        cache.publish(r)  # idempotent re-publish (profile --repeat path)
        assert r.as_dict()["plan_cache_hits"] == 1


class TestLaunchStatsCounters:
    def test_merge_identity_carries_new_counters(self):
        a = LaunchStats(event_waits=2, events_recorded=1, plan_builds=1, batches=1)
        ident = LaunchStats()
        ident.merge(a)
        assert ident.event_waits == 2 and ident.plan_builds == 1
        b = LaunchStats(event_waits=3, plan_builds=0, batches=1)
        ident.merge(b)
        assert ident.event_waits == 5 and ident.plan_builds == 1

    def test_publish_sets_gauges(self):
        stats = LaunchStats(executed_launches=7, event_waits=2, batches=3)
        r = MetricsRegistry()
        stats.publish(r)
        vals = r.as_dict()
        assert vals["driver_executed_launches"] == 7.0
        assert vals["driver_event_waits"] == 2.0
        assert vals["driver_batches"] == 3.0


# ---------------------------------------------------------------------------
# differential: tracing must not move the simulated numbers
# ---------------------------------------------------------------------------
class TestTracingIsTimingNeutral:
    def test_fig3_identical_under_tracing(self, tmp_path):
        from repro.bench.figures import fig3_distributions
        from repro.bench.regression import (
            compare_to_snapshot, load_snapshot, save_snapshot,
        )

        args = dict(batch_count=200, max_size=128, bin_width=16)
        save_snapshot(fig3_distributions(**args), tmp_path / "base.json")
        with activate(Tracer()):
            traced = fig3_distributions(**args)
        drifts = compare_to_snapshot(
            traced, load_snapshot(tmp_path / "base.json"), rel_tol=0.0
        )
        assert all(d.max_rel_drift == 0.0 for d in drifts)

    def test_fig7_identical_under_tracing(self, tmp_path):
        from repro.bench.figures import fig7_crossover
        from repro.bench.regression import (
            compare_to_snapshot, load_snapshot, save_snapshot,
        )

        args = dict(precision="d", nmax_values=(128, 256), batch_count=100)
        save_snapshot(fig7_crossover(**args), tmp_path / "base.json")
        tr = Tracer()
        with activate(tr):
            traced = fig7_crossover(**args)
        drifts = compare_to_snapshot(
            traced, load_snapshot(tmp_path / "base.json"), rel_tol=0.0
        )
        assert all(d.max_rel_drift == 0.0 for d in drifts)
        assert len(tr) > 0  # the tracer really was live
