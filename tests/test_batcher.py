"""Batching policies and windowing invariants (repro.serving.batcher)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ArgumentError, ServingError
from repro.serving import (
    Batcher,
    BatchingPolicy,
    FifoPolicy,
    GreedyWindowPolicy,
    POLICIES,
    SizeBucketPolicy,
    make_policy,
)
from repro.serving.request import Request


def _req(req_id, n, arrival=0.0, deadline=None, dtype=np.float64):
    return Request(
        req_id=req_id,
        op="potrf",
        matrix=np.zeros((n, n), dtype=dtype),
        deadline=deadline,
        arrival=arrival,
    )


class TestMakePolicy:
    def test_resolves_every_registered_name(self):
        for name, cls in POLICIES.items():
            policy = make_policy(name)
            assert isinstance(policy, cls)
            assert policy.name == name

    def test_passes_instances_through(self):
        policy = GreedyWindowPolicy(max_ratio=2.0)
        assert make_policy(policy) is policy

    def test_unknown_name_raises(self):
        with pytest.raises(ArgumentError, match="unknown batching policy"):
            make_policy("round-robin")

    def test_bad_parameters_raise(self):
        with pytest.raises(ArgumentError):
            SizeBucketPolicy(bucket_width=0)
        with pytest.raises(ArgumentError):
            GreedyWindowPolicy(max_ratio=0.5)


class TestFifoPolicy:
    def test_takes_arrival_order(self):
        pending = [_req(i, n) for i, n in enumerate([64, 8, 256, 16, 128])]
        picks = FifoPolicy().select(pending, urgent=0, max_batch=3)
        assert picks == [0, 1, 2]

    def test_ignores_sizes_entirely(self):
        pending = [_req(0, 1), _req(1, 500)]
        assert FifoPolicy().select(pending, urgent=0, max_batch=8) == [0, 1]

    def test_skips_incompatible_dtypes(self):
        pending = [_req(0, 32), _req(1, 32, dtype=np.float32), _req(2, 32)]
        assert FifoPolicy().select(pending, urgent=0, max_batch=8) == [0, 2]


class TestSizeBucketPolicy:
    def test_bucket_quantization(self):
        policy = SizeBucketPolicy(bucket_width=32)
        assert policy.bucket(1) == 0
        assert policy.bucket(32) == 0
        assert policy.bucket(33) == 1
        assert policy.bucket(64) == 1
        assert policy.bucket(65) == 2

    def test_serves_only_the_urgent_bucket(self):
        policy = SizeBucketPolicy(bucket_width=32)
        pending = [_req(i, n) for i, n in enumerate([10, 200, 25, 31, 100])]
        picks = policy.select(pending, urgent=0, max_batch=8)
        assert picks == [0, 2, 3]  # the 1..32 bucket

    def test_width_one_is_exact_size_grouping(self):
        policy = SizeBucketPolicy(bucket_width=1)
        pending = [_req(i, n) for i, n in enumerate([64, 65, 64, 63])]
        assert policy.select(pending, urgent=0, max_batch=8) == [0, 2]


class TestGreedyWindowPolicy:
    def test_absorbs_closest_sizes_first(self):
        policy = GreedyWindowPolicy(max_ratio=10.0)
        pending = [_req(i, n) for i, n in enumerate([100, 10, 90, 120, 105])]
        picks = policy.select(pending, urgent=0, max_batch=3)
        # urgent (100) then closest two: 105 (d=5), 90 (d=10)
        assert picks == [0, 4, 2]

    def test_ratio_bound_excludes_far_sizes(self):
        policy = GreedyWindowPolicy(max_ratio=1.5)
        pending = [_req(i, n) for i, n in enumerate([100, 10, 140, 160, 400])]
        picks = policy.select(pending, urgent=0, max_batch=8)
        sizes = sorted(pending[i].n for i in picks)
        assert max(sizes) / min(sizes) <= 1.5
        assert 0 in picks and 4 not in picks and 1 not in picks

    def test_exact_ratio_serves_equal_sizes_only(self):
        policy = GreedyWindowPolicy(max_ratio=1.0)
        pending = [_req(i, n) for i, n in enumerate([64, 65, 64, 63, 64])]
        assert sorted(policy.select(pending, urgent=0, max_batch=8)) == [0, 2, 4]

    def test_window_cannot_jump_over_its_own_bound(self):
        # 80 admits 100 (ratio 1.25) then 120/80 = 1.5 is still in, but
        # 150/80 would break the bound even though 150/120 alone fits.
        policy = GreedyWindowPolicy(max_ratio=1.5)
        pending = [_req(i, n) for i, n in enumerate([80, 100, 120, 150])]
        picks = policy.select(pending, urgent=0, max_batch=8)
        assert sorted(picks) == [0, 1, 2]


class TestBatcherWindowing:
    def test_constructor_validation(self):
        with pytest.raises(ArgumentError):
            Batcher(max_batch=0)
        with pytest.raises(ArgumentError):
            Batcher(max_wait=-1.0)
        with pytest.raises(ArgumentError):
            Batcher(deadline_margin=-0.1)

    def test_empty_batcher_is_quiet(self):
        b = Batcher()
        assert len(b) == 0
        assert b.urgent_index() is None
        assert not b.flush_due(now=100.0)
        assert b.next_wakeup(now=100.0) is None
        assert b.next_batch(now=100.0, force=True) is None

    def test_flush_on_full_window(self):
        b = Batcher("fifo", max_batch=2, max_wait=100.0)
        b.add(_req(0, 32, arrival=0.0))
        assert not b.flush_due(now=0.0)
        b.add(_req(1, 32, arrival=0.0))
        assert b.flush_due(now=0.0)
        assert b.next_wakeup(now=0.0) == 0.0

    def test_flush_on_max_wait_expiry(self):
        b = Batcher("fifo", max_batch=100, max_wait=1.0)
        b.add(_req(0, 32, arrival=5.0))
        assert not b.flush_due(now=5.5)
        assert b.next_wakeup(now=5.5) == pytest.approx(6.0)
        assert b.flush_due(now=6.0)
        assert b.next_batch(now=5.5) is None  # window still open
        assert [r.req_id for r in b.next_batch(now=6.0)] == [0]

    def test_deadline_pressure_flushes_early(self):
        b = Batcher("fifo", max_batch=100, max_wait=10.0, deadline_margin=0.5)
        b.add(_req(0, 32, arrival=0.0, deadline=2.0))
        assert not b.flush_due(now=1.0)
        assert b.flush_due(now=1.5)  # deadline - margin

    def test_urgent_is_soonest_effective_deadline(self):
        b = Batcher("fifo", max_batch=100, max_wait=10.0)
        b.add(_req(0, 32, arrival=0.0))              # effective 10.0
        b.add(_req(1, 32, arrival=1.0, deadline=3.0))  # effective 3.0
        assert b.urgent_index() == 1

    def test_ties_break_by_arrival_then_id(self):
        b = Batcher("fifo", max_batch=100, max_wait=10.0)
        b.add(_req(3, 32, arrival=1.0))
        b.add(_req(1, 32, arrival=0.0))
        b.add(_req(0, 32, arrival=0.0))
        assert b.urgent_index() == 2  # arrival 0.0, req_id 0

    def test_drain_all_empties_in_policy_shapes(self):
        b = Batcher("size-bucket", max_batch=3)
        for i, n in enumerate([10, 100, 20, 110, 30]):
            b.add(_req(i, n, arrival=float(i)))
        batches = b.drain_all()
        assert len(b) == 0
        served = sorted(r.req_id for batch in batches for r in batch)
        assert served == [0, 1, 2, 3, 4]
        for batch in batches:
            sizes = [r.n for r in batch]
            width = SizeBucketPolicy().bucket_width
            assert len({(n - 1) // width for n in sizes}) == 1

    def test_validate_rejects_a_broken_policy(self):
        class Broken(BatchingPolicy):
            name = "broken"

            def select(self, pending, urgent, max_batch):
                return [i for i in range(len(pending)) if i != urgent]

        b = Batcher(Broken(), max_batch=4)
        b.add(_req(0, 32))
        b.add(_req(1, 32))
        with pytest.raises(ServingError, match="starved the most urgent"):
            b.next_batch(now=0.0, force=True)

    def test_validate_rejects_duplicates_and_overflow(self):
        class Dup(BatchingPolicy):
            def select(self, pending, urgent, max_batch):
                return [urgent, urgent]

        class Fat(BatchingPolicy):
            def select(self, pending, urgent, max_batch):
                return list(range(len(pending)))

        for policy, msg in ((Dup(), "twice"), (Fat(), "exceeded max_batch")):
            b = Batcher(policy, max_batch=1)
            b.add(_req(0, 32))
            b.add(_req(1, 32))
            with pytest.raises(ServingError, match=msg):
                b.next_batch(now=0.0, force=True)


# ----------------------------------------------------------------------
# Property-based: no policy violates the window invariants under
# randomized arrival streams (the PR's acceptance requirement).
# ----------------------------------------------------------------------

arrival_streams = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=300),           # n
        st.floats(min_value=0.0, max_value=5.0),           # inter-arrival gap
        st.one_of(st.none(), st.floats(min_value=0.0, max_value=8.0)),  # rel deadline
        st.sampled_from(["d", "s"]),                       # dtype class
    ),
    min_size=1,
    max_size=40,
)


@pytest.mark.parametrize("policy", sorted(POLICIES))
@given(stream=arrival_streams, max_batch=st.integers(1, 8), max_wait=st.floats(0.0, 2.0))
@settings(max_examples=50, deadline=None)
def test_batcher_invariants_under_random_arrivals(policy, stream, max_batch, max_wait):
    """Whatever arrives, every emitted batch stays within max_batch,
    contains the most urgent request, holds one dtype, and no request
    is dropped, duplicated, or left waiting past its flush instant."""
    b = Batcher(policy, max_batch=max_batch, max_wait=max_wait)
    dtypes = {"d": np.float64, "s": np.float32}
    served, now = [], 0.0

    def check_pop(now):
        expected_urgent = b.pending[b.urgent_index()].req_id
        batch = b.next_batch(now)
        if batch is None:
            # Nothing due: nobody's effective deadline has passed and
            # the window isn't full.
            assert len(b) < max_batch
            assert all(r.effective_deadline(max_wait) > now for r in b.pending)
            return False
        assert 1 <= len(batch) <= max_batch
        assert expected_urgent in {r.req_id for r in batch}
        assert len({r.dtype for r in batch}) == 1
        served.extend(r.req_id for r in batch)
        return True

    for req_id, (n, gap, rel_deadline, prec) in enumerate(stream):
        now += gap
        deadline = None if rel_deadline is None else now + rel_deadline
        b.add(_req(req_id, n, arrival=now, deadline=deadline, dtype=dtypes[prec]))
        while len(b) and check_pop(now):
            pass

    while len(b):  # drain whatever the windows still hold
        expected_urgent = b.pending[b.urgent_index()].req_id
        batch = b.next_batch(now, force=True)
        assert 1 <= len(batch) <= max_batch
        assert expected_urgent in {r.req_id for r in batch}
        assert len({r.dtype for r in batch}) == 1
        served.extend(r.req_id for r in batch)

    assert sorted(served) == list(range(len(stream)))  # no loss, no dup
