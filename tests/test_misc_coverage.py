"""Coverage for corners the larger suites skirt: error formatting,
single-matrix kernels, analytic-vs-exact scheduling at scale, and the
CPU model's secondary paths."""

import numpy as np
import pytest

from repro.cpu import MklModel
from repro.cpu.clockutil import busy_fraction
from repro.device import BlockScheduler, Device
from repro.errors import ArgumentError, BatchNumericalError
from repro.hostblas import make_spd
from repro.kernels.cublas import SingleGemmKernel, SinglePotf2Kernel
from repro.types import Precision


class TestErrorFormatting:
    def test_argument_error_info_code(self):
        e = ArgumentError(4, "bad arg")
        assert e.info == -4
        assert isinstance(e, ValueError)

    def test_batch_error_lists_first_failures(self):
        e = BatchNumericalError({i: i + 1 for i in range(12)}, "dpotrf")
        msg = str(e)
        assert "12 matrices failed" in msg
        assert "batch[0] info=1" in msg
        assert "+4 more" in msg

    def test_batch_error_short_list(self):
        e = BatchNumericalError({3: 7}, "spotrf")
        assert "+4 more" not in str(e)
        assert "batch[3] info=7" in str(e)


class TestSingleMatrixKernels:
    def test_single_gemm_numerics(self):
        dev = Device()
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal((6, 4)), rng.standard_normal((4, 5))
        c = np.zeros((6, 5))
        dev.launch(SingleGemmKernel(6, 5, 4, Precision.D, a=a, b=b, c=c, beta=0.0))
        np.testing.assert_allclose(c, a @ b, rtol=1e-12)

    def test_single_gemm_few_blocks_idle_device(self):
        """A small single gemm cannot fill the simulated device."""
        dev = Device()
        rec = dev.launch(SingleGemmKernel(64, 64, 64, Precision.D))
        assert rec.blocks == 1
        assert rec.schedule.utilization < 0.1

    def test_single_gemm_zero_dims(self):
        dev = Device()
        rec = dev.launch(SingleGemmKernel(0, 5, 4, Precision.D))
        assert rec.duration < 1e-5

    def test_single_gemm_validation(self):
        with pytest.raises(ValueError):
            SingleGemmKernel(-1, 2, 2, Precision.D)

    def test_single_potf2_numerics_and_info(self):
        dev = Device()
        a = make_spd(12, "d", seed=3)
        dev.launch(SinglePotf2Kernel(12, Precision.D, a=a))
        import scipy.linalg as sla

        ref = sla.cholesky(make_spd(12, "d", seed=3), lower=True)
        np.testing.assert_allclose(np.tril(a), ref, rtol=1e-10)

    def test_single_potf2_failure_written_to_info(self):
        dev = Device()
        a = np.eye(4)
        a[2, 2] = -1.0
        info_out = np.zeros(1, dtype=np.int64)
        dev.launch(SinglePotf2Kernel(4, Precision.D, a=a, info_out=info_out, info_offset=10))
        assert info_out[0] == 13

    def test_single_potf2_serial_bound(self):
        """One block, one serial sweep: throughput is terrible — the
        reason hybrids put this step on the CPU."""
        dev = Device()
        rec = dev.launch(SinglePotf2Kernel(512, Precision.D))
        from repro.flops import potf2_flops

        gflops = potf2_flops(512) / rec.duration / 1e9
        assert gflops < 30.0

    def test_single_potf2_validation(self):
        with pytest.raises(ValueError):
            SinglePotf2Kernel(0, Precision.D)
        with pytest.raises(ValueError):
            SinglePotf2Kernel(2000, Precision.D)


class TestSchedulerConsistencyAtScale:
    def test_analytic_tracks_exact_on_large_uniformish_grids(self):
        rng = np.random.default_rng(1)
        d = rng.uniform(1.0, 3.0, size=4000)
        s = BlockScheduler()
        exact = s.makespan(d, None, 240, force="exact").makespan
        approx = s.makespan(d, None, 240, force="analytic").makespan
        assert approx == pytest.approx(exact, rel=0.08)

    def test_auto_switches_by_threshold(self):
        s = BlockScheduler(exact_threshold=10)
        small = s.makespan(np.full(10, 1.0), None, 4)
        big = s.makespan(np.full(11, 1.0), None, 4)
        assert small.exact and not big.exact

    def test_device_uses_analytic_for_huge_grids(self):
        from repro.device.kernel import BlockWork, Kernel, LaunchConfig

        class Huge(Kernel):
            name = "huge"

            @property
            def precision(self):
                return Precision.S

            def launch_config(self):
                return LaunchConfig(128)

            def block_works(self):
                return [BlockWork(1e4, 1e3, count=400_000)]

        dev = Device(execute_numerics=False)
        rec = dev.launch(Huge())
        assert not rec.schedule.exact
        assert rec.blocks == 400_000


class TestCpuSecondaryPaths:
    def test_gemm_time_multithreaded(self):
        mkl = MklModel()
        t1 = mkl.gemm_time(512, 512, 512, "d", threads=1)
        t16 = mkl.gemm_time(512, 512, 512, "d", threads=16)
        assert t16 < t1

    def test_contended_rate_validation(self):
        mkl = MklModel()
        with pytest.raises(ValueError):
            mkl.contended_potrf_time(64, "d", active_cores=0)
        with pytest.raises(ValueError):
            mkl.contended_potrf_time(64, "d", active_cores=99)

    def test_contention_tiers(self):
        """Aggregate working sets past L3 slow each core further."""
        mkl = MklModel()
        lone = mkl.potrf_time(600, "d", threads=1)
        cached = mkl.contended_potrf_time(60, "d", active_cores=16)
        spilled = mkl.contended_potrf_time(600, "d", active_cores=16)
        assert spilled > lone  # contention never helps
        ratio_spilled = spilled / mkl.potrf_time(600, "d", threads=1)
        ratio_cached = cached / mkl.potrf_time(60, "d", threads=1)
        assert ratio_spilled > ratio_cached

    def test_busy_fraction(self):
        assert busy_fraction(np.array([1.0, 1.0]), 2.0) == pytest.approx(0.5)
        assert busy_fraction(np.array([1.0]), 0.0) == 0.0


class TestDeviceMisc:
    def test_elapsed_is_synchronize_alias(self):
        dev = Device()
        assert dev.elapsed() == dev.synchronize()

    def test_device_array_repr(self):
        dev = Device()
        arr = dev.alloc((2, 3), np.float32)
        assert "shape=(2, 3)" in repr(arr)

    def test_interval_duration(self):
        from repro.device import Interval

        assert Interval(1.0, 3.5, "x").duration == pytest.approx(2.5)
