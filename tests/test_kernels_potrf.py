"""Tests for the fused/panel/naive POTRF kernels and the aux kernels."""

import numpy as np
import pytest

from repro.core.batch import VBatch
from repro.device import Device
from repro.errors import LaunchError
from repro.hostblas import make_spd, make_spd_batch, potrf as host_potrf
from repro.kernels.aux import IMaxReduceKernel, StepSizesKernel, compute_max_size
from repro.kernels.fused_potrf import (
    FusedPotrfStepKernel,
    fused_shared_mem_bytes,
    fused_step_numerics,
)
from repro.kernels.naive import NaivePotf2Kernel
from repro.kernels.potf2 import PanelPotf2StepKernel


def batch_of(device, sizes, precision="d", seed=0):
    return VBatch.from_host(device, make_spd_batch(sizes, precision, seed=seed))


class TestFusedStepNumerics:
    @pytest.mark.parametrize("n,nb", [(4, 2), (16, 8), (33, 8), (64, 16)])
    def test_full_factorization_by_steps(self, n, nb):
        a = make_spd(n, "d", seed=n)
        work = a.copy()
        for s in range(-(-n // nb)):
            assert fused_step_numerics(work, s * nb, nb) == 0
        ref = a.copy()
        assert host_potrf(ref, nb=nb) == 0
        np.testing.assert_allclose(np.tril(work), np.tril(ref), rtol=1e-11)

    def test_failure_reports_global_index(self):
        a = make_spd(8, "d", seed=1)
        a[5, 5] = -100.0
        a[6:, 5] = a[5, 6:] = 0.0
        work = a.copy()
        assert fused_step_numerics(work, 0, 4) == 0
        assert fused_step_numerics(work, 4, 4) == 6  # 1-based global pivot


class TestFusedPotrfStepKernel:
    def test_one_block_per_matrix(self):
        dev = Device()
        b = batch_of(dev, [10, 20, 30])
        k = FusedPotrfStepKernel(b, 0, 8, np.arange(3), max_m=30)
        assert k.total_blocks() == 3

    def test_finished_matrices_become_dead_blocks(self):
        dev = Device()
        b = batch_of(dev, [5, 40])
        k = FusedPotrfStepKernel(b, step=1, nb=8, indices=np.arange(2), max_m=32)
        works = k.block_works()
        assert sum(w.count for w in works if w.terminated) == 1
        assert sum(w.count for w in works if not w.terminated) == 1

    def test_numerics_advance_and_finish(self):
        dev = Device()
        mats = make_spd_batch([12, 30], "d", seed=3)
        b = VBatch.from_host(dev, mats)
        nb = 8
        for s in range(-(-30 // nb)):
            dev.launch(FusedPotrfStepKernel(b, s, nb, np.arange(2), max_m=max(1, 30 - s * nb)))
        outs = b.download_matrices()
        for a, l in zip(mats, outs):
            ref = a.copy()
            host_potrf(ref)
            np.testing.assert_allclose(np.tril(l), np.tril(ref), rtol=1e-10)

    def test_non_spd_sets_info_and_stops(self):
        dev = Device()
        a = make_spd(10, "d", seed=4)
        a[7, 7] = -1e3
        a[8:, 7] = a[7, 8:] = 0.0
        b = VBatch.from_host(dev, [a])
        for s in range(5):
            dev.launch(FusedPotrfStepKernel(b, s, 2, np.arange(1), max_m=max(1, 10 - 2 * s)))
        infos = b.download_infos()
        assert infos[0] == 8

    def test_shared_memory_scales_with_max_m(self):
        dev = Device()
        b = batch_of(dev, [64, 512])
        small = FusedPotrfStepKernel(b, 0, 8, np.array([0]), max_m=64)
        big = FusedPotrfStepKernel(b, 0, 8, np.array([0, 1]), max_m=512)
        assert big.launch_config().shared_mem_per_block > small.launch_config().shared_mem_per_block

    def test_rejects_oversized_panel(self):
        dev = Device()
        b = batch_of(dev, [8])
        with pytest.raises(LaunchError, match="separated"):
            FusedPotrfStepKernel(b, 0, 8, np.array([0]), max_m=2000)

    def test_argument_validation(self):
        dev = Device()
        b = batch_of(dev, [8])
        with pytest.raises(ValueError):
            FusedPotrfStepKernel(b, 0, 0, np.array([0]), max_m=8)
        with pytest.raises(ValueError):
            FusedPotrfStepKernel(b, -1, 8, np.array([0]), max_m=8)
        with pytest.raises(ValueError):
            FusedPotrfStepKernel(b, 0, 8, np.array([0]), max_m=0)

    def test_shared_mem_helper(self):
        assert fused_shared_mem_bytes(128, 8, 8) == 128 * 8 * 8
        assert fused_shared_mem_bytes(0, 8, 8) == 8 * 8  # at least one row


class TestPanelPotf2Kernel:
    def test_tile_local_factorization(self):
        """The panel kernel must use tile-local history only."""
        dev = Device()
        n, off, jb = 40, 16, 16
        a = make_spd(n, "d", seed=9)
        b = VBatch.from_host(dev, [a])
        # Pretend the leading off x off block is already factorized and
        # the trailing matrix updated (right-looking invariant): here we
        # just factor the tile as if its update was applied.
        tile_ref = a[off : off + jb, off : off + jb].copy()
        jbs = np.array([jb])
        for t in range(-(-jb // 8)):
            dev.launch(PanelPotf2StepKernel(b, off, t, 8, jbs, jb))
        got = b.download_matrices()[0][off : off + jb, off : off + jb]
        ref = tile_ref.copy()
        assert host_potrf(ref, nb=8) == 0
        np.testing.assert_allclose(np.tril(got), np.tril(ref), rtol=1e-10)

    def test_zero_jb_matrices_are_dead(self):
        dev = Device()
        b = batch_of(dev, [4, 40])
        k = PanelPotf2StepKernel(b, 0, 0, 8, np.array([0, 32]), 32)
        assert sum(w.count for w in k.block_works() if w.terminated) == 1

    def test_validation(self):
        dev = Device()
        b = batch_of(dev, [8])
        with pytest.raises(ValueError):
            PanelPotf2StepKernel(b, 0, 0, 0, np.array([8]), 8)
        with pytest.raises(ValueError):
            PanelPotf2StepKernel(b, 0, 0, 8, np.array([8]), 0)


class TestNaivePotf2Kernel:
    def test_numerics(self):
        dev = Device()
        mats = make_spd_batch([6, 20], "d", seed=5)
        b = VBatch.from_host(dev, mats)
        dev.launch(NaivePotf2Kernel(b, 0, np.array([6, 20]), 20))
        outs = b.download_matrices()
        for a, l in zip(mats, outs):
            ref = a.copy()
            host_potrf(ref)
            np.testing.assert_allclose(np.tril(l), np.tril(ref), rtol=1e-10)

    def test_serial_latency_scale_above_fused(self):
        assert NaivePotf2Kernel.serial_latency_scale > 1.0

    def test_slower_than_fused_per_block(self):
        dev = Device()
        b = batch_of(dev, [32] * 50)
        t0 = dev.synchronize()
        dev.launch(NaivePotf2Kernel(b, 0, np.full(50, 32), 32))
        naive_t = dev.synchronize() - t0
        dev2 = Device()
        b2 = batch_of(dev2, [32] * 50)
        t0 = dev2.synchronize()
        dev2.launch(FusedPotrfStepKernel(b2, 0, 32, np.arange(50), 32))
        fused_t = dev2.synchronize() - t0
        assert naive_t > 1.5 * fused_t

    def test_validation(self):
        dev = Device()
        b = batch_of(dev, [8])
        with pytest.raises(ValueError):
            NaivePotf2Kernel(b, -1, np.array([8]), 8)
        with pytest.raises(ValueError):
            NaivePotf2Kernel(b, 0, np.array([8]), 0)


class TestAuxKernels:
    def test_imax_reduce(self):
        dev = Device()
        vals = dev.alloc((100,), np.int64)
        vals.data[...] = np.random.default_rng(0).integers(1, 500, 100)
        out = dev.alloc((1,), np.int64)
        dev.launch(IMaxReduceKernel(vals, out))
        assert out.data[0] == vals.data.max()

    def test_compute_max_size_charges_time(self):
        dev = Device()
        b = batch_of(dev, [3, 99, 42])
        t0 = dev.synchronize()
        assert compute_max_size(dev, b) == 99
        assert dev.synchronize() > t0

    def test_compute_max_size_timing_only_mode(self):
        dev = Device(execute_numerics=False)
        b = VBatch.allocate(dev, [3, 77, 42], "d")
        assert compute_max_size(dev, b) == 77

    def test_step_sizes_kernel(self):
        dev = Device()
        b = batch_of(dev, [5, 20, 64])
        rem = dev.alloc((3,), np.int64)
        pan = dev.alloc((3,), np.int64)
        stats = dev.alloc((2,), np.int64)
        dev.launch(StepSizesKernel(b.sizes_dev, offset=16, nb=8,
                                   remaining_dev=rem, panel_dev=pan, stats_dev=stats))
        np.testing.assert_array_equal(rem.data, [0, 4, 48])
        np.testing.assert_array_equal(pan.data, [0, 4, 8])
        assert stats.data[0] == 48  # max remaining
        assert stats.data[1] == 2   # live count

    def test_step_sizes_validation(self):
        dev = Device()
        b = batch_of(dev, [5])
        rem = dev.alloc((1,), np.int64)
        with pytest.raises(ValueError):
            StepSizesKernel(b.sizes_dev, -1, 8, rem, rem, rem)
        with pytest.raises(ValueError):
            StepSizesKernel(b.sizes_dev, 0, 0, rem, rem, rem)

    def test_aux_kernels_are_cheap(self):
        """§III-F: auxiliary kernel overhead is almost negligible."""
        dev = Device(execute_numerics=False)
        b = VBatch.allocate(dev, list(range(1, 1001)), "d")
        rem = dev.alloc((1000,), np.int64)
        pan = dev.alloc((1000,), np.int64)
        stats = dev.alloc((2,), np.int64)
        dev.reset_clock()
        dev.launch(StepSizesKernel(b.sizes_dev, 0, 8, rem, pan, stats))
        aux_time = dev.synchronize()
        assert aux_time < 20e-6  # a handful of microseconds
