"""Leading-dimension support end to end (paper §III-A).

"Each matrix is assumed to have a different size and leading
dimension" — the interface carries per-matrix ``lda`` arrays, and the
factorization must operate on the live ``n x n`` window of buffers
whose rows are padded to ``lda``.
"""

import numpy as np
import pytest

from repro import Device, PotrfOptions, VBatch, make_spd_batch, potrf_vbatched
from repro.hostblas import cholesky_residual


def padded_batch(device, sizes, ldas, seed=0):
    """Build a VBatch with lda-padded buffers and sentinel padding."""
    mats = make_spd_batch(sizes, "d", seed=seed)
    batch = VBatch.allocate(device, sizes, "d", ldas=ldas)
    for i, (n, lda) in enumerate(zip(sizes, ldas)):
        buf = batch.matrices[i].data
        buf[...] = -777.0  # sentinel in the padding rows
        buf[:n, :n] = mats[i]
        batch.sizes_dev.data[i] = n
    return mats, batch


class TestLdaSupport:
    @pytest.mark.parametrize("approach", ["fused", "separated"])
    def test_factorization_respects_lda_padding(self, approach):
        device = Device()
        sizes = [5, 33, 64, 17]
        ldas = [8, 40, 64, 32]  # mixed: padded and exact
        mats, batch = padded_batch(device, sizes, ldas, seed=11)
        res = potrf_vbatched(device, batch, PotrfOptions(approach=approach, on_error="raise"))
        assert res.failed_count == 0
        for i, (n, lda) in enumerate(zip(sizes, ldas)):
            buf = batch.matrices[i].data
            assert cholesky_residual(mats[i], buf[:n, :n]) < 1e-13
            # Padding rows were never touched.
            if lda > n:
                np.testing.assert_array_equal(buf[n:, :], -777.0)

    def test_download_matrices_strips_padding(self):
        device = Device()
        sizes = [4, 9]
        mats, batch = padded_batch(device, sizes, [16, 12], seed=5)
        outs = batch.download_matrices()
        assert [o.shape for o in outs] == [(4, 4), (9, 9)]

    def test_lu_with_lda_padding(self):
        from repro.extensions import getrf_vbatched
        from repro.hostblas import apply_pivots

        device = Device()
        rng = np.random.default_rng(7)
        sizes = [6, 20]
        ldas = [10, 24]
        batch = VBatch.allocate(device, sizes, "d", ldas=ldas)
        originals = []
        for i, n in enumerate(sizes):
            a = rng.standard_normal((n, n)) + n * np.eye(n)
            batch.matrices[i].data[:n, :n] = a
            originals.append(a)
        res = getrf_vbatched(device, batch)
        assert res.failed_count == 0
        for i, (n, a) in enumerate(zip(sizes, originals)):
            f = batch.matrices[i].data[:n, :n]
            l = np.tril(f, -1) + np.eye(n)
            u = np.triu(f)
            recon = apply_pivots(l @ u, res.ipivs[i, :n], forward=False)
            np.testing.assert_allclose(recon, a, atol=1e-9)
