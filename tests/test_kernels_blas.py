"""Tests for the simulated device BLAS kernels (gemm/syrk/trtri/trsm)."""

import numpy as np
import pytest

from repro.device import Device
from repro.kernels.gemm import GemmTask, GemmTiling, VbatchedGemmKernel
from repro.kernels.syrk import StreamedSyrkLauncher, SyrkTask, VbatchedSyrkKernel
from repro.kernels.trsm import TrsmPanelItem, vbatched_trsm_panel
from repro.kernels.trtri import TrtriTask, VbatchedTrtriDiagKernel
from repro.types import Precision

RNG = np.random.default_rng(7)


def lower_tri(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.tril(rng.standard_normal((n, n))) + n * np.eye(n)


class TestGemmTiling:
    def test_default_shared_mem_double(self):
        t = GemmTiling()
        assert t.shared_mem(8) == 2 * (64 + 64) * 16 * 8

    def test_for_precision_fits_device(self):
        for elem in (4, 8, 16):
            t = GemmTiling.for_precision(elem)
            assert t.shared_mem(elem) <= 48 * 1024

    def test_z_uses_smaller_tiles(self):
        assert GemmTiling.for_precision(16).blk_m < GemmTiling.for_precision(8).blk_m

    def test_validation(self):
        with pytest.raises(ValueError):
            GemmTiling(blk_m=0)


class TestVbatchedGemm:
    def test_numerics_batch(self):
        dev = Device()
        tasks = []
        expect = []
        for i, (m, n, k) in enumerate([(5, 4, 3), (16, 16, 16), (1, 7, 2)]):
            rng = np.random.default_rng(i)
            a, b = rng.standard_normal((m, k)), rng.standard_normal((k, n))
            c = rng.standard_normal((m, n))
            expect.append(2.0 * a @ b + c)
            tasks.append(GemmTask(m, n, k, a=a, b=b, c=c, alpha=2.0, beta=1.0))
        dev.launch(VbatchedGemmKernel(tasks, Precision.D))
        for t, e in zip(tasks, expect):
            np.testing.assert_allclose(t.c, e, rtol=1e-12)

    def test_transb_conjugate(self):
        dev = Device()
        rng = np.random.default_rng(3)
        a = rng.standard_normal((4, 3)) + 1j * rng.standard_normal((4, 3))
        b = rng.standard_normal((5, 3)) + 1j * rng.standard_normal((5, 3))
        c = np.zeros((4, 5), complex)
        dev.launch(VbatchedGemmKernel(
            [GemmTask(4, 5, 3, a=a, b=b, c=c, transb="c", beta=0.0)], Precision.Z
        ))
        np.testing.assert_allclose(c, a @ b.conj().T, rtol=1e-12)

    def test_grid_sized_by_max_dims(self):
        k = VbatchedGemmKernel(
            [GemmTask(200, 200, 8), GemmTask(10, 10, 8)], Precision.D
        )
        works = k.block_works()
        total = sum(w.count for w in works)
        # ceil(200/64)^2 tiles per matrix x 2 matrices
        assert total == 2 * (4 * 4)
        dead = sum(w.count for w in works if w.terminated)
        assert dead == 16 - 1  # the small matrix has one live tile

    def test_empty_tasks_rejected(self):
        with pytest.raises(ValueError):
            VbatchedGemmKernel([], Precision.D)

    def test_zero_size_task_all_dead(self):
        k = VbatchedGemmKernel([GemmTask(0, 0, 0), GemmTask(64, 64, 4)], Precision.D)
        dead = sum(w.count for w in k.block_works() if w.terminated)
        assert dead == 1

    def test_small_tile_has_fewer_active_threads(self):
        big = VbatchedGemmKernel([GemmTask(64, 64, 16)], Precision.D).block_works()[0]
        small = VbatchedGemmKernel([GemmTask(8, 8, 16)], Precision.D).block_works()[0]
        assert small.active_threads < big.active_threads

    def test_flops_accounted_exactly(self):
        m, n, k = 100, 70, 30
        kern = VbatchedGemmKernel([GemmTask(m, n, k)], Precision.D)
        total = sum(w.flops * w.count for w in kern.block_works())
        assert total == pytest.approx(2 * m * n * k)

    def test_negative_dims_rejected(self):
        with pytest.raises(ValueError):
            GemmTask(-1, 2, 2)


class TestVbatchedSyrk:
    def test_numerics(self):
        dev = Device()
        rng = np.random.default_rng(11)
        tasks = []
        expect = []
        for n, k in [(6, 3), (17, 8)]:
            a = rng.standard_normal((n, k))
            c = rng.standard_normal((n, n))
            e = c - np.tril(a @ a.T) + np.triu(c, 1) * 0  # lower updated only
            full = a @ a.T
            mask = np.tril(np.ones((n, n), bool))
            e = c.copy()
            e[mask] -= full[mask]
            expect.append(e)
            tasks.append(SyrkTask(n, k, a=a, c=c))
        dev.launch(VbatchedSyrkKernel(tasks, Precision.D))
        for t, e in zip(tasks, expect):
            np.testing.assert_allclose(t.c, e, rtol=1e-12)

    def test_decision_layer_kills_upper_tiles(self):
        kern = VbatchedSyrkKernel([SyrkTask(256, 16)], Precision.D)
        works = kern.block_works()
        live = sum(w.count for w in works if not w.terminated)
        dead = sum(w.count for w in works if w.terminated)
        tiles = -(-256 // kern.tiling.blk_m)
        assert live == tiles * (tiles + 1) // 2
        assert live + dead == tiles * tiles

    def test_flops_accounted(self):
        n, k = 120, 40
        kern = VbatchedSyrkKernel([SyrkTask(n, k)], Precision.D)
        total = sum(w.flops * w.count for w in kern.block_works())
        assert total == pytest.approx(n * (n + 1) * k)

    def test_k_zero_is_cheap(self):
        kern = VbatchedSyrkKernel([SyrkTask(64, 0)], Precision.D)
        assert sum(w.flops for w in kern.block_works()) == 0.0

    def test_square_tiles_required(self):
        with pytest.raises(ValueError, match="square tiles"):
            VbatchedSyrkKernel([SyrkTask(8, 4)], Precision.D, GemmTiling(blk_m=64, blk_n=32))

    def test_streamed_launcher_issues_per_matrix(self):
        dev = Device(execute_numerics=False)
        launcher = StreamedSyrkLauncher(dev, num_streams=4)
        launcher.launch_all([SyrkTask(64, 16)] * 10, Precision.D)
        assert len(dev.launches) == 10
        launcher.synchronize()
        assert dev.synchronize() > 0

    def test_streamed_launcher_validation(self):
        dev = Device()
        with pytest.raises(ValueError):
            StreamedSyrkLauncher(dev, num_streams=0)


class TestVbatchedTrtri:
    def test_numerics_inverts_diag_blocks(self):
        dev = Device()
        jb = 48
        tri = lower_tri(jb, seed=5)
        inv = np.zeros_like(tri)
        dev.launch(VbatchedTrtriDiagKernel([TrtriTask(jb, tri, inv)], Precision.D, ib=16))
        for j0 in range(0, jb, 16):
            j1 = j0 + 16
            block = tri[j0:j1, j0:j1]
            np.testing.assert_allclose(inv[j0:j1, j0:j1] @ block, np.eye(16), atol=1e-10)

    def test_source_triangle_not_modified(self):
        dev = Device()
        tri = lower_tri(9, seed=6)
        keep = tri.copy()
        inv = np.zeros_like(tri)
        dev.launch(VbatchedTrtriDiagKernel([TrtriTask(9, tri, inv)], Precision.D, ib=4))
        np.testing.assert_array_equal(tri, keep)

    def test_dead_blocks_for_small_tasks(self):
        kern = VbatchedTrtriDiagKernel(
            [TrtriTask(64), TrtriTask(0)], Precision.D, ib=32
        )
        dead = sum(w.count for w in kern.block_works() if w.terminated)
        assert dead == 2  # the zero-size task's full grid share

    def test_validation(self):
        with pytest.raises(ValueError):
            VbatchedTrtriDiagKernel([], Precision.D)
        with pytest.raises(ValueError):
            VbatchedTrtriDiagKernel([TrtriTask(4)], Precision.D, ib=0)
        with pytest.raises(ValueError):
            TrtriTask(-1)


class TestVbatchedTrsmPanel:
    @pytest.mark.parametrize("m,jb", [(10, 8), (40, 32), (65, 33), (7, 64)])
    def test_solves_right_lower_conjtrans(self, m, jb):
        """B := B L^{-H} across a small batch, vs direct solve."""
        dev = Device()
        rng = np.random.default_rng(m * 100 + jb)
        l11 = lower_tri(jb, seed=jb)
        b = rng.standard_normal((m, jb))
        b_orig = b.copy()
        inv_ws = np.zeros((jb, jb))
        launches = vbatched_trsm_panel(
            dev, [TrsmPanelItem(m, jb, l11=l11, b=b, inv_ws=inv_ws)], Precision.D, ib=16
        )
        assert launches >= 2  # trtri + at least one gemm sweep
        np.testing.assert_allclose(b @ np.tril(l11).conj().T, b_orig, rtol=1e-9, atol=1e-9)

    def test_mixed_batch_with_finished_matrices(self):
        dev = Device()
        rng = np.random.default_rng(0)
        l11 = lower_tri(16, seed=1)
        b = rng.standard_normal((12, 16))
        b0 = b.copy()
        items = [
            TrsmPanelItem(0, 0),  # finished matrix
            TrsmPanelItem(12, 16, l11=l11, b=b, inv_ws=np.zeros((16, 16))),
        ]
        vbatched_trsm_panel(dev, items, Precision.D)
        np.testing.assert_allclose(b @ np.tril(l11).T, b0, rtol=1e-9)

    def test_all_finished_no_launches(self):
        dev = Device()
        assert vbatched_trsm_panel(dev, [TrsmPanelItem(0, 0)], Precision.D) == 0
        assert dev.launches == []

    def test_validation(self):
        dev = Device()
        with pytest.raises(ValueError):
            vbatched_trsm_panel(dev, [], Precision.D)
        with pytest.raises(ValueError):
            vbatched_trsm_panel(dev, [TrsmPanelItem(2, 2)], Precision.D, ib=0)
        with pytest.raises(ValueError):
            TrsmPanelItem(-1, 2)
