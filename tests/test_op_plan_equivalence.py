"""Planner timing for geqrf/getrf must replay the eager drivers exactly.

These constants are the elapsed times the *eager* (pre-planner)
geqrf/getrf drivers produced for the pinned workloads below, captured
immediately before the extensions were rewritten as pure planners.
``Device.launch`` timing depends only on the kernel sequence, launch
order and stream assignment, so planning first and executing after
must replay bit-identical times — ``==`` on floats, no tolerance.

The harness is part of the contract: ONE shared timing-only device
runs all eight configs in this exact order (clock state carries
across launches).  If a change here is deliberate (cost model or
driver behavior), recapture all eight constants together.
"""

import numpy as np
import pytest

from repro.core.batch import VBatch
from repro.device import Device
from repro.extensions import geqrf_vbatched, getrf_vbatched

EXPECTED = {
    ("geqrf", "uniform-d", "d", 64): 0.009289999109405044,
    ("getrf", "uniform-d", "d", 64): 0.004872247907558252,
    ("geqrf", "uniform-s", "s", 64): 0.002610802790463806,
    ("getrf", "uniform-s", "s", 64): 0.0015443448536421114,
    ("geqrf", "ragged-z", "z", 32): 0.007656810630055005,
    ("getrf", "ragged-z", "z", 32): 0.0036887168573361447,
    ("geqrf", "chunky-d", "d", 128): 0.005949137663779226,
    ("getrf", "chunky-d", "d", 128): 0.0027993100324229248,
}


def _sizes(seed, count, lo, hi):
    rng = np.random.default_rng(seed)
    return rng.integers(lo, hi + 1, size=count).astype(np.int64)


CONFIGS = [
    ("uniform-d", _sizes(3, 150, 32, 300), "d", 64),
    ("uniform-s", _sizes(4, 200, 16, 256), "s", 64),
    ("ragged-z", _sizes(5, 96, 1, 180), "z", 32),
    ("chunky-d", np.array([512, 384, 256, 200, 129, 64, 33, 7], dtype=np.int64), "d", 128),
]


@pytest.fixture(scope="module")
def measured():
    """Replay the capture harness: one device, all configs in order."""
    dev = Device(execute_numerics=False)
    out = {}
    for name, sizes, prec, nb in CONFIGS:
        for fn, label in ((geqrf_vbatched, "geqrf"), (getrf_vbatched, "getrf")):
            batch = VBatch.allocate(dev, sizes, prec)
            res = fn(dev, batch, max_n=int(sizes.max()), panel_nb=nb)
            out[(label, name, prec, nb)] = res.elapsed
            batch.free()
    return out


@pytest.mark.parametrize("key", sorted(EXPECTED))
def test_planned_timing_is_bit_identical_to_eager(measured, key):
    assert measured[key] == EXPECTED[key]


def test_every_config_is_pinned(measured):
    assert set(measured) == set(EXPECTED)
