"""Tests for the stream-aware plan executor and concurrent execution."""

import numpy as np
import pytest

from repro.core.plan import PlanBuilder
from repro.device import Device, PlanExecutor, execute_concurrently
from repro.device.kernel import BlockWork, Kernel, LaunchConfig
from repro.errors import PlanError
from repro.types import Precision


class _ToyKernel(Kernel):
    name = "toy"

    def __init__(self, nblocks=15, flops=1e6):
        super().__init__()
        self.nblocks = nblocks
        self.flops = flops
        self.ran = False

    @property
    def precision(self):
        return Precision.D

    def launch_config(self):
        return LaunchConfig(128, 0)

    def block_works(self):
        return [BlockWork(self.flops, 0.0, count=self.nblocks)]

    def run_numerics(self):
        self.ran = True


class TestPlanExecutor:
    def test_executes_all_nodes_with_tag_counts(self):
        dev = Device()
        pb = PlanBuilder(dev)
        k1, k2, k3 = _ToyKernel(), _ToyKernel(), _ToyKernel()
        pb.aux(k1)
        pb.launch(k2, tag="potf2")
        pb.launch(k3, tag="potf2")
        pb.barrier()
        stats = PlanExecutor(dev).execute(pb.build())
        assert stats.launches == 3
        assert stats.aux_launches == 1
        assert stats.kernel_launches == 2
        assert stats.barriers == 1
        assert stats.count("potf2") == 2
        assert stats.count("aux") == 1
        assert k1.ran and k2.ran and k3.ran

    def test_same_stream_serializes(self):
        dev = Device(execute_numerics=False)
        pb = PlanBuilder(dev)
        pb.launch(_ToyKernel(flops=1e8))
        pb.launch(_ToyKernel(flops=1e8))
        PlanExecutor(dev).execute(pb.build())
        r1, r2 = dev.launches[-2:]
        assert r2.start >= r1.end

    def test_different_streams_overlap(self):
        dev = Device(execute_numerics=False)
        pb = PlanBuilder(dev)
        pb.launch(_ToyKernel(nblocks=1, flops=1e7), stream=1)
        pb.launch(_ToyKernel(nblocks=1, flops=1e7), stream=2)
        stats = PlanExecutor(dev).execute(pb.build())
        r1, r2 = dev.launches[-2:]
        assert r2.start < r1.end
        assert stats.streams_used == 2  # only streams that ran launches count

    def test_cross_stream_dep_becomes_event_wait(self):
        dev = Device(execute_numerics=False)
        pb = PlanBuilder(dev)
        a = pb.launch(_ToyKernel(flops=1e9), stream=1)
        pb.launch(_ToyKernel(nblocks=1, flops=1e3), stream=2, after=(a,))
        PlanExecutor(dev).execute(pb.build())
        r1, r2 = dev.launches[-2:]
        assert r2.start >= r1.end  # despite living on another stream

    def test_same_stream_dep_needs_no_event(self):
        dev = Device(execute_numerics=False)
        pb = PlanBuilder(dev)
        a = pb.launch(_ToyKernel(), stream=1)
        pb.launch(_ToyKernel(), stream=1, after=(a,))
        PlanExecutor(dev).execute(pb.build())  # queue order suffices; no error

    def test_barrier_joins_streams_to_host(self):
        dev = Device(execute_numerics=False)
        pb = PlanBuilder(dev)
        pb.launch(_ToyKernel(flops=1e8), stream=1)
        pb.launch(_ToyKernel(flops=1e8), stream=2)
        pb.barrier()
        pb.launch(_ToyKernel(nblocks=1, flops=1e3))  # after the join
        PlanExecutor(dev).execute(pb.build())
        *_, last = dev.launches
        prior_end = max(r.end for r in dev.launches[:-1])
        assert last.start >= prior_end

    def test_scoped_barrier_only_drains_listed_streams(self):
        dev = Device(execute_numerics=False)
        pb = PlanBuilder(dev)
        pb.launch(_ToyKernel(nblocks=1, flops=1e4), stream=1)
        pb.barrier(streams=(1,))
        stats = PlanExecutor(dev).execute(pb.build())
        assert stats.barriers == 1

    def test_closed_plan_rejected(self):
        dev = Device(execute_numerics=False)
        plan = PlanBuilder(dev).build()
        plan.close()
        with pytest.raises(PlanError):
            PlanExecutor(dev).execute(plan)

    def test_wrong_device_rejected(self):
        d1, d2 = Device(execute_numerics=False), Device(execute_numerics=False)
        plan = PlanBuilder(d1).build()
        with pytest.raises(PlanError):
            PlanExecutor(d2).execute(plan)

    def test_reexecution_replays_identical_timing(self):
        dev = Device(execute_numerics=False)
        pb = PlanBuilder(dev)
        for _ in range(4):
            pb.launch(_ToyKernel(flops=1e7))
        plan = pb.build()
        t0 = dev.synchronize()
        PlanExecutor(dev).execute(plan)
        e1 = dev.synchronize() - t0
        t0 = dev.synchronize()
        PlanExecutor(dev).execute(plan)
        e2 = dev.synchronize() - t0
        assert e1 == e2

    def test_plan_stream_fanout_still_shares_sm_area(self):
        """Saturating kernels fanned over plan streams gain ~nothing:
        the executor's streams share one machine's SM area."""
        fan = Device(execute_numerics=False)
        pb = PlanBuilder(fan)
        for s in range(4):
            pb.launch(_ToyKernel(nblocks=1000, flops=1e8), stream=1 + s)
        PlanExecutor(fan).execute(pb.build())
        serial = Device(execute_numerics=False)
        for _ in range(4):
            serial.launch(_ToyKernel(nblocks=1000, flops=1e8))
        # Far from 4x scaling: streams only overlap wave tails and
        # launch overhead, never the SM-area itself.
        assert fan.synchronize() >= 0.8 * serial.synchronize()


class TestExecuteConcurrently:
    def test_empty(self):
        assert execute_concurrently([]) == []

    def test_duplicate_device_rejected(self):
        dev = Device(execute_numerics=False)
        p1 = PlanBuilder(dev).build()
        p2 = PlanBuilder(dev).build()
        with pytest.raises(PlanError):
            execute_concurrently([p1, p2])

    def test_results_ordered_and_clocks_independent(self):
        devs = [Device(execute_numerics=False) for _ in range(3)]
        plans = []
        for i, dev in enumerate(devs):
            pb = PlanBuilder(dev)
            for _ in range(i + 1):
                pb.launch(_ToyKernel(flops=1e7))
            plans.append(pb.build())
        stats = execute_concurrently(plans)
        assert [s.launches for s in stats] == [1, 2, 3]
        times = [d.synchronize() for d in devs]
        assert times[0] < times[1] < times[2]  # each device paid only its share

    def test_matches_sequential_execution(self):
        def build(dev):
            pb = PlanBuilder(dev)
            pb.launch(_ToyKernel(flops=1e8))
            pb.launch(_ToyKernel(flops=3e7))
            return pb.build()

        d_conc = [Device(execute_numerics=False) for _ in range(2)]
        execute_concurrently([build(d) for d in d_conc])
        d_seq = [Device(execute_numerics=False) for _ in range(2)]
        for d in d_seq:
            PlanExecutor(d).execute(build(d))
        assert [d.synchronize() for d in d_conc] == [d.synchronize() for d in d_seq]


def test_numerics_plan_writes_factors():
    """End-to-end sanity: an executed numerics plan mutates the batch."""
    from repro.core.batch import VBatch
    from repro.core.fused import FusedDriver

    dev = Device()
    rng = np.random.default_rng(1)
    mats = []
    for n in (5, 9, 12):
        a = rng.standard_normal((n, n))
        mats.append(a @ a.T + n * np.eye(n))
    batch = VBatch.from_host(dev, [m.copy() for m in mats])
    plan = FusedDriver(dev).plan(batch, 12)
    PlanExecutor(dev).execute(plan)
    plan.close()
    for i, a0 in enumerate(mats):
        L = np.tril(batch.matrix_view(i))
        assert np.linalg.norm(L @ L.T - a0) / np.linalg.norm(a0) < 1e-13


class _FailingKernel(_ToyKernel):
    name = "failing"

    def run_numerics(self):
        raise ValueError("synthetic numerics failure")


class TestPlanExecutionError:
    """Satellite (b): concurrent failures carry plan index + device id."""

    def _plan(self, dev, kernel=None):
        pb = PlanBuilder(dev)
        pb.launch(kernel or _ToyKernel())
        return pb.build()

    def test_single_plan_failure_is_wrapped(self):
        from repro.errors import PlanExecutionError

        dev = Device()
        plan = self._plan(dev, _FailingKernel())
        with pytest.raises(PlanExecutionError) as exc_info:
            execute_concurrently([plan])
        err = exc_info.value
        assert err.plan_index == 0
        assert err.device_name == dev.name
        assert isinstance(err.__cause__, ValueError)
        assert "plan[0]" in str(err) and dev.name in str(err)

    def test_first_failure_in_plan_order_after_all_finish(self):
        from repro.errors import PlanExecutionError

        devs = [Device() for _ in range(3)]
        kernels = [_ToyKernel(), _FailingKernel(), _ToyKernel()]
        plans = [self._plan(d, k) for d, k in zip(devs, kernels)]
        with pytest.raises(PlanExecutionError) as exc_info:
            execute_concurrently(plans)
        err = exc_info.value
        assert err.plan_index == 1
        assert err.device_name == devs[1].name
        # healthy shards were not abandoned mid-flight
        assert kernels[0].ran and kernels[2].ran

    def test_is_a_plan_error(self):
        from repro.errors import PlanExecutionError

        assert issubclass(PlanExecutionError, PlanError)


class TestParallelNumerics:
    """Optimizer-marked bucket groups run their numerics on a pool."""

    def _grouped_plan(self, dev, count=3):
        pb = PlanBuilder(dev)
        kernels = [_ToyKernel() for _ in range(count)]
        for i, k in enumerate(kernels):
            pb.launch(k, stream=1 + i)
        plan = pb.build()
        plan.meta["optimizer"] = {"parallel_groups": [list(range(count))]}
        return plan, kernels

    def test_group_numerics_run_on_pool(self):
        dev = Device()
        plan, kernels = self._grouped_plan(dev)
        stats = PlanExecutor(dev, max_workers=4).execute(plan)
        assert stats.parallel_numerics == 3
        assert all(k.ran for k in kernels)

    def test_single_worker_stays_serial(self):
        dev = Device()
        plan, kernels = self._grouped_plan(dev)
        stats = PlanExecutor(dev, max_workers=1).execute(plan)
        assert stats.parallel_numerics == 0
        assert all(k.ran for k in kernels)

    def test_timing_mode_ignores_groups(self):
        dev = Device(execute_numerics=False)
        plan, kernels = self._grouped_plan(dev)
        stats = PlanExecutor(dev).execute(plan)
        assert stats.parallel_numerics == 0

    def test_max_workers_capped_by_hardware_queues(self):
        dev = Device()
        ex = PlanExecutor(dev, max_workers=10_000)
        assert ex.max_workers == dev.spec.hardware_queues

    def test_group_failure_propagates(self):
        dev = Device()
        pb = PlanBuilder(dev)
        kernels = [_ToyKernel(), _FailingKernel(), _ToyKernel()]
        for i, k in enumerate(kernels):
            pb.launch(k, stream=1 + i)
        plan = pb.build()
        plan.meta["optimizer"] = {"parallel_groups": [[0, 1, 2]]}
        with pytest.raises(ValueError, match="synthetic numerics failure"):
            PlanExecutor(dev, max_workers=4).execute(plan)
