"""Differential tests: bucketed-vectorized kernels vs the per-matrix
reference path.

Every kernel's ``run_numerics`` has two implementations — the original
per-matrix loop (the reference, selected by
``grouping.reference_numerics()`` or ``REPRO_REFERENCE_KERNELS=1``) and
the size-bucketed batched-NumPy path.  These tests factorize identical
batches down both paths and require the factors, infos, and padding
bytes to agree.
"""

import numpy as np
import pytest

from repro import Device, PotrfOptions, VBatch, potrf_vbatched
from repro.baselines import run_cpu_percore, run_cpu_percore_measured
from repro.distributions import gaussian_sizes, uniform_sizes
from repro.hostblas import cholesky_residual, make_spd_batch
from repro.kernels import grouping


def factorize(sizes, mats, approach, reference, ldas=None, precision="d", **opts):
    """One full factorization; returns (downloaded factors, infos)."""
    device = Device()
    if ldas is None:
        batch = VBatch.from_host(device, mats)
    else:
        batch = VBatch.allocate(device, sizes, precision, ldas=ldas)
        for i, (n, lda) in enumerate(zip(sizes, ldas)):
            buf = batch.matrices[i].data
            buf[...] = -777.0  # sentinel in the padding rows
            buf[:n, :n] = mats[i]
    with grouping.reference_numerics(reference):
        potrf_vbatched(device, batch, PotrfOptions(approach=approach, **opts))
    outs = [m.data.copy() for m in batch.matrices]
    infos = batch.infos_dev.data.copy()
    return outs, infos


def tol(precision):
    return 1e-4 if precision == "s" else 1e-12


class TestReferenceSwitch:
    def test_context_manager_restores(self):
        assert not grouping.reference_enabled()
        with grouping.reference_numerics():
            assert grouping.reference_enabled()
        assert not grouping.reference_enabled()

    def test_set_returns_previous(self):
        prev = grouping.set_reference_numerics(True)
        try:
            assert prev is False
            assert grouping.reference_enabled()
        finally:
            grouping.set_reference_numerics(prev)


class TestDifferentialFactorization:
    @pytest.mark.parametrize("approach", ["fused", "separated"])
    @pytest.mark.parametrize("dist", ["uniform", "gaussian"])
    def test_distributions_match_reference(self, approach, dist):
        gen = uniform_sizes if dist == "uniform" else gaussian_sizes
        sizes = gen(40, 96, seed=7).tolist()
        mats = make_spd_batch(sizes, "d", seed=3)
        ref, ref_infos = factorize(sizes, [m.copy() for m in mats], approach, True)
        vec, vec_infos = factorize(sizes, [m.copy() for m in mats], approach, False)
        assert np.array_equal(ref_infos, vec_infos)
        for r, v in zip(ref, vec):
            np.testing.assert_allclose(v, r, rtol=tol("d"), atol=tol("d"))

    def test_single_precision_tolerance(self):
        sizes = uniform_sizes(24, 64, seed=1).tolist()
        mats = make_spd_batch(sizes, "s", seed=5)
        ref, _ = factorize(sizes, [m.copy() for m in mats], "fused", True)
        vec, _ = factorize(sizes, [m.copy() for m in mats], "fused", False)
        for r, v in zip(ref, vec):
            np.testing.assert_allclose(v, r, rtol=tol("s"), atol=tol("s"))

    @pytest.mark.parametrize("approach", ["fused", "separated"])
    def test_lda_padding_matches_reference(self, approach):
        sizes = [5, 33, 33, 64, 17, 5, 33]
        ldas = [8, 40, 40, 64, 32, 8, 48]  # repeated (n, lda) -> real buckets
        mats = make_spd_batch(sizes, "d", seed=11)
        ref, ref_infos = factorize(sizes, mats, approach, True, ldas=ldas)
        vec, vec_infos = factorize(sizes, mats, approach, False, ldas=ldas)
        assert np.array_equal(ref_infos, vec_infos)
        for n, lda, r, v in zip(sizes, ldas, ref, vec):
            np.testing.assert_allclose(v[:n, :n], r[:n, :n], rtol=1e-12, atol=1e-12)
            # Both paths must leave the padding rows untouched.
            assert np.all(r[n:, :] == -777.0)
            assert np.all(v[n:, :] == -777.0)
        worst = max(
            cholesky_residual(a, v[:n, :n])
            for a, v, n in zip(mats, vec, sizes)
        )
        assert worst < 1e-13

    @pytest.mark.parametrize("approach", ["fused", "separated"])
    def test_failed_matrices_match_reference(self, approach):
        """Early-terminated (non-SPD) matrices: same infos, same partial
        factors, and no writes past the failing column."""
        sizes = [48, 48, 48, 48, 32]
        mats = make_spd_batch(sizes, "d", seed=2)
        mats[1][20, 20] = -5.0  # fails at pivot 21
        mats[3][0, 0] = -1.0  # fails immediately
        ref, ref_infos = factorize(
            sizes, [m.copy() for m in mats], approach, True, on_error="info"
        )
        vec, vec_infos = factorize(
            sizes, [m.copy() for m in mats], approach, False, on_error="info"
        )
        assert np.array_equal(ref_infos, vec_infos)
        assert ref_infos[1] != 0 and ref_infos[3] != 0
        assert ref_infos[0] == ref_infos[2] == ref_infos[4] == 0
        for r, v in zip(ref, vec):
            np.testing.assert_allclose(v, r, rtol=1e-12, atol=1e-12)

    def test_env_var_selects_reference(self, monkeypatch):
        import importlib

        monkeypatch.setenv("REPRO_REFERENCE_KERNELS", "1")
        mod = importlib.reload(grouping)
        try:
            assert mod.reference_enabled()
        finally:
            monkeypatch.delenv("REPRO_REFERENCE_KERNELS")
            importlib.reload(grouping)
        assert not grouping.reference_enabled()


class TestBucketHelpers:
    def test_partition_first_seen_order(self):
        keys = [(8, 8), (4, 4), (8, 8), (4, 8), (4, 4)]
        buckets = grouping.partition_buckets(keys)
        assert [b.key for b in buckets] == [(8, 8), (4, 4), (4, 8)]
        assert [b.positions.tolist() for b in buckets] == [[0, 2], [1, 4], [3]]

    def test_grouped_first_seen_preserves_issue_order(self):
        vals = np.array([7, 3, 7, 7, 5, 3])
        uniq, counts = grouping.grouped_first_seen(vals)
        assert uniq.tolist() == [7, 3, 5]
        assert counts.tolist() == [3, 2, 1]

    def test_grouped_first_seen_empty(self):
        uniq, counts = grouping.grouped_first_seen(np.array([], dtype=np.int64))
        assert uniq.size == 0 and counts.size == 0


class TestMeasuredPercoreBaseline:
    SIZES = np.array([24, 40, 16, 32, 8, 48, 12, 20])

    def test_dynamic_thread_pool_factorizes(self):
        mats = make_spd_batch(self.SIZES.tolist(), "d", seed=3)
        orig = [a.copy() for a in mats]
        r = run_cpu_percore_measured(
            self.SIZES, "d", scheduling="dynamic", workers=3, matrices=mats
        )
        assert r.label == "cpu-1core-dynamic-measured"
        assert r.elapsed > 0 and r.extra["failed"] == 0
        assert r.core_busy.shape == (3,)
        worst = max(cholesky_residual(a, l) for a, l in zip(orig, mats))
        assert worst < 1e-13

    def test_static_round_robin(self):
        r = run_cpu_percore_measured(self.SIZES, "d", scheduling="static", workers=2)
        assert r.label == "cpu-1core-static-measured"
        assert r.extra["workers"] == 2 and r.extra["failed"] == 0
        assert r.core_busy.shape == (2,)
        assert 0.0 < r.extra["utilization"] <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_cpu_percore_measured(np.array([]), "d")
        with pytest.raises(ValueError):
            run_cpu_percore_measured(self.SIZES, "d", scheduling="guided")
        with pytest.raises(ValueError):
            run_cpu_percore_measured(self.SIZES, "d", executor="mpi")
        with pytest.raises(ValueError):
            run_cpu_percore_measured(self.SIZES, "d", matrices=[np.eye(2)])

    def test_modeled_and_measured_report_same_flops(self):
        modeled = run_cpu_percore(self.SIZES, "d")
        measured = run_cpu_percore_measured(self.SIZES, "d", workers=2)
        assert modeled.total_flops == measured.total_flops
