"""Tests for the CPU substrate (spec, MKL model, scheduler, power)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import (
    SANDY_BRIDGE_2X8,
    SANDY_BRIDGE_POWER,
    CoreScheduler,
    CpuPowerModel,
    MklModel,
)
from repro.flops import potrf_flops
from repro.types import precision_info


class TestCpuSpec:
    def test_peak_flops_published(self):
        # 16 cores x 8 DP flops/cycle x 2.6 GHz = 332.8 Gflop/s
        assert SANDY_BRIDGE_2X8.peak_flops(precision_info("d")) == pytest.approx(332.8e9)
        assert SANDY_BRIDGE_2X8.peak_flops(precision_info("s")) == pytest.approx(665.6e9)

    def test_total_cores(self):
        assert SANDY_BRIDGE_2X8.total_cores == 16

    def test_complex_peak_equals_real(self):
        assert SANDY_BRIDGE_2X8.peak_flops(precision_info("z")) == SANDY_BRIDGE_2X8.peak_flops(
            precision_info("d")
        )


class TestMklModel:
    def setup_method(self):
        self.mkl = MklModel()

    def test_sequential_rate_below_peak(self):
        peak = SANDY_BRIDGE_2X8.peak_flops_per_core(precision_info("d"))
        for n in (8, 64, 512, 4096):
            assert 0 < self.mkl.sequential_rate(n, "d") < peak

    def test_rate_grows_with_size_until_cache_spill(self):
        r32 = self.mkl.sequential_rate(32, "d")
        r128 = self.mkl.sequential_rate(128, "d")
        assert r128 > r32

    def test_large_matrices_reach_decent_fraction_of_peak(self):
        peak = SANDY_BRIDGE_2X8.peak_flops_per_core(precision_info("d"))
        assert self.mkl.sequential_rate(1000, "d") > 0.5 * peak

    def test_cache_spill_penalty(self):
        """A matrix too big for L3/core runs slower per flop."""
        # L3/core = 2.5 MB -> n = 572 doubles; compare densities around it.
        small = self.mkl.sequential_rate(500, "d")
        big = self.mkl.sequential_rate(620, "d")
        assert big < small * 1.02  # spill cancels the size-growth benefit

    def test_single_precision_faster(self):
        ts = self.mkl.potrf_time(256, "s")
        td = self.mkl.potrf_time(256, "d")
        assert ts < td

    def test_call_overhead_dominates_tiny(self):
        t = self.mkl.potrf_time(2, "d")
        assert t >= self.mkl.constants.call_overhead

    def test_multithreading_hurts_small_matrices(self):
        """Paper §IV-F: all-cores-on-one-small-matrix is not wise."""
        t1 = self.mkl.potrf_time(64, "d", threads=1)
        t16 = self.mkl.potrf_time(64, "d", threads=16)
        assert t16 > t1 / 2  # nowhere near 16x; overheads bite

    def test_multithreading_helps_large_matrices(self):
        t1 = self.mkl.potrf_time(2048, "d", threads=1)
        t16 = self.mkl.potrf_time(2048, "d", threads=16)
        assert t16 < t1 / 4

    def test_effective_threads_capped_by_size(self):
        assert self.mkl.effective_threads(96, 16) == pytest.approx(1.0)
        assert self.mkl.effective_threads(960, 16) == pytest.approx(10.0)
        assert self.mkl.effective_threads(9600, 16) == 16

    def test_potrf_time_validation(self):
        with pytest.raises(ValueError):
            self.mkl.potrf_time(16, "d", threads=0)
        with pytest.raises(ValueError):
            self.mkl.potrf_time(16, "d", threads=17)
        with pytest.raises(ValueError):
            self.mkl.sequential_rate(0, "d")

    def test_gemm_time_positive_and_scales(self):
        t_small = self.mkl.gemm_time(64, 64, 64, "d")
        t_big = self.mkl.gemm_time(512, 512, 512, "d")
        assert 0 < t_small < t_big

    @given(n=st.integers(1, 3000))
    @settings(max_examples=50, deadline=None)
    def test_property_time_exceeds_peak_bound(self, n):
        """No modeled call beats the hardware peak."""
        t = self.mkl.potrf_time(n, "d", threads=1)
        peak = SANDY_BRIDGE_2X8.peak_flops_per_core(precision_info("d"))
        assert t >= potrf_flops(n) / peak


class TestCoreScheduler:
    def setup_method(self):
        self.sched = CoreScheduler()

    def test_equal_tasks_perfectly_balanced(self):
        t = np.full(160, 1.0)
        res = self.sched.run(t, "static")
        assert res.makespan == pytest.approx(10.0)
        assert res.imbalance == pytest.approx(1.0)

    def test_dynamic_beats_static_on_skewed_sizes(self):
        """Paper: static scheduling oscillates; dynamic balances."""
        rng = np.random.default_rng(0)
        t = rng.exponential(1.0, size=400)
        res_s = self.sched.run(t, "static")
        res_d = self.sched.run(t, "dynamic")
        assert res_d.makespan < res_s.makespan

    def test_dynamic_near_lower_bound(self):
        rng = np.random.default_rng(1)
        t = rng.uniform(0.5, 1.5, size=320)
        res = self.sched.run(t, "dynamic")
        lower = t.sum() / 16
        assert res.makespan < 1.1 * lower + t.max()

    def test_dispatch_overhead_charged(self):
        t = np.full(16, 1.0)
        res = self.sched.run(t, "dynamic")
        assert res.makespan == pytest.approx(1.0 + self.sched.dispatch_overhead)

    def test_single_core(self):
        t = np.array([1.0, 2.0, 3.0])
        res = self.sched.run(t, "static", cores=1)
        assert res.makespan == pytest.approx(6.0)

    def test_empty_batch(self):
        res = self.sched.run(np.array([]), "dynamic")
        assert res.makespan == 0.0
        assert res.utilization == 0.0

    def test_utilization_in_unit_range(self):
        rng = np.random.default_rng(2)
        res = self.sched.run(rng.uniform(0.1, 2.0, 100), "dynamic")
        assert 0.0 < res.utilization <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            self.sched.run(np.array([1.0]), "lpt")
        with pytest.raises(ValueError):
            self.sched.run(np.array([-1.0]), "static")
        with pytest.raises(ValueError):
            self.sched.run(np.array([1.0]), "static", cores=0)
        with pytest.raises(ValueError):
            self.sched.run(np.ones((2, 2)), "static")
        with pytest.raises(ValueError):
            CoreScheduler(dispatch_overhead=-1e-6)

    @given(
        tasks=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=100),
        cores=st.integers(1, 16),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_schedules_respect_bounds(self, tasks, cores):
        t = np.array(tasks)
        for mode in ("static", "dynamic"):
            res = self.sched.run(t, mode, cores=cores)
            slack = self.sched.dispatch_overhead * len(tasks)
            assert res.makespan >= t.max() - 1e-12
            assert res.makespan >= t.sum() / cores - 1e-12
            assert res.makespan <= t.sum() + slack + 1e-9


class TestCpuPower:
    def test_idle_and_max(self):
        assert SANDY_BRIDGE_POWER.idle_watts == pytest.approx(40.0)
        assert SANDY_BRIDGE_POWER.max_watts == pytest.approx(40.0 + 16 * 11.0)

    def test_power_linear_in_cores(self):
        p0 = SANDY_BRIDGE_POWER.power(0)
        p8 = SANDY_BRIDGE_POWER.power(8)
        p16 = SANDY_BRIDGE_POWER.power(16)
        assert p8 - p0 == pytest.approx(p16 - p8)

    def test_power_validation(self):
        with pytest.raises(ValueError):
            SANDY_BRIDGE_POWER.power(17)
        with pytest.raises(ValueError):
            SANDY_BRIDGE_POWER.power(-1)

    def test_energy_accounting(self):
        busy = np.full(16, 2.0)  # every core busy for the whole 2s run
        e = SANDY_BRIDGE_POWER.energy(busy, makespan=2.0)
        assert e == pytest.approx(SANDY_BRIDGE_POWER.max_watts * 2.0)

    def test_idle_run_energy(self):
        e = SANDY_BRIDGE_POWER.energy(np.zeros(16), makespan=3.0)
        assert e == pytest.approx(40.0 * 3.0)

    def test_energy_validation(self):
        with pytest.raises(ValueError):
            SANDY_BRIDGE_POWER.energy(np.zeros(4), makespan=-1.0)
        with pytest.raises(ValueError):
            SANDY_BRIDGE_POWER.energy(np.array([-1.0]), makespan=1.0)
        with pytest.raises(ValueError):
            CpuPowerModel(SANDY_BRIDGE_2X8, -1.0, 5.0)
