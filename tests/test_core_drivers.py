"""End-to-end tests for the vbatched drivers and the public interface."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import scipy.linalg as sla

from repro import (
    Device,
    PotrfOptions,
    VBatch,
    make_spd_batch,
    potrf_batched_fixed,
    potrf_vbatched,
    potrf_vbatched_max,
)
from repro.core.blas_steps import BlasStepDriver
from repro.core.crossover import CrossoverPolicy, DEFAULT_CROSSOVER
from repro.core.fused import FusedDriver, default_fused_nb, fused_max_feasible_size
from repro.core.padding import pad_to_fixed, padding_extra_flops
from repro.core.separated import SeparatedDriver
from repro.errors import ArgumentError, BatchNumericalError, DeviceOutOfMemory
from repro.hostblas import cholesky_residual, make_spd
from repro.types import Precision


def residuals(mats, batch):
    outs = batch.download_matrices()
    return [cholesky_residual(a, l) for a, l in zip(mats, outs)]


SIZES = [7, 1, 33, 64, 96, 50, 128, 2, 31]


class TestFusedDriver:
    @pytest.mark.parametrize("etm", ["classic", "aggressive"])
    @pytest.mark.parametrize("sorting", [False, True])
    def test_all_variants_numerically_identical(self, etm, sorting):
        dev = Device()
        mats = make_spd_batch(SIZES, "d", seed=1)
        b = VBatch.from_host(dev, mats)
        FusedDriver(dev, etm=etm, sorting=sorting).factorize(b, max(SIZES))
        assert max(residuals(mats, b)) < 1e-13

    def test_stats_reported(self):
        dev = Device()
        b = VBatch.from_host(dev, make_spd_batch(SIZES, "d", seed=1))
        stats = FusedDriver(dev, sorting=True).factorize(b, max(SIZES))
        assert stats.steps > 0
        assert stats.fused_launches >= stats.steps
        assert stats.aux_launches == stats.steps

    def test_sorting_launches_at_least_unsorted(self):
        dev1 = Device(execute_numerics=False)
        b1 = VBatch.allocate(dev1, SIZES, "d")
        s1 = FusedDriver(dev1, sorting=False).factorize(b1, max(SIZES))
        dev2 = Device(execute_numerics=False)
        b2 = VBatch.allocate(dev2, SIZES, "d")
        s2 = FusedDriver(dev2, sorting=True).factorize(b2, max(SIZES))
        assert s2.fused_launches >= s1.fused_launches

    def test_validation(self):
        dev = Device()
        with pytest.raises(ArgumentError):
            FusedDriver(dev, etm="hyper")
        b = VBatch.allocate(Device(execute_numerics=False), [4], "d")
        with pytest.raises(ArgumentError):
            FusedDriver(dev).factorize(b, 0)


class TestDefaultNb:
    @pytest.mark.parametrize("prec", ["s", "d", "c", "z"])
    def test_always_feasible(self, prec):
        from repro.types import precision_info

        elem = precision_info(prec).bytes_per_element
        for n in (1, 16, 100, 500, 1000):
            nb = default_fused_nb(n, prec)
            rows = min(1024, -(-n // 32) * 32)
            assert rows * nb * elem <= 48 * 1024
            assert nb >= 1

    def test_narrower_for_larger_matrices(self):
        assert default_fused_nb(32, "d") >= default_fused_nb(512, "d")

    def test_feasible_bound(self):
        for prec in ("s", "d", "c", "z"):
            bound = fused_max_feasible_size(prec)
            assert 0 < bound <= 1024

    def test_invalid_max_n(self):
        with pytest.raises(ArgumentError):
            default_fused_nb(0, "d")


class TestSeparatedDriver:
    @pytest.mark.parametrize("panel_mode", ["fused", "naive"])
    @pytest.mark.parametrize("panel_nb", [64, 128])
    def test_numerics(self, panel_mode, panel_nb):
        dev = Device()
        sizes = [7, 65, 130, 96, 48, 200, 1]
        mats = make_spd_batch(sizes, "d", seed=2)
        b = VBatch.from_host(dev, mats)
        SeparatedDriver(dev, panel_nb=panel_nb, panel_mode=panel_mode).factorize(b, 200)
        assert max(residuals(mats, b)) < 1e-13

    def test_streamed_syrk_numerics(self):
        dev = Device()
        sizes = [64, 200, 150]
        mats = make_spd_batch(sizes, "d", seed=3)
        b = VBatch.from_host(dev, mats)
        SeparatedDriver(dev, syrk_mode="streamed").factorize(b, 200)
        assert max(residuals(mats, b)) < 1e-13

    def test_single_precision(self):
        dev = Device()
        sizes = [33, 150, 80]
        mats = make_spd_batch(sizes, "s", seed=4)
        b = VBatch.from_host(dev, mats)
        SeparatedDriver(dev).factorize(b, 150)
        assert max(residuals(mats, b)) < 1e-4

    def test_stats(self):
        dev = Device(execute_numerics=False)
        b = VBatch.allocate(dev, [300] * 4, "d")
        stats = SeparatedDriver(dev).factorize(b, 300)
        assert stats.steps == 3  # ceil(300/128)
        assert stats.potf2_launches > 0
        assert stats.trsm_launches > 0
        assert stats.syrk_launches > 0

    def test_validation(self):
        dev = Device()
        with pytest.raises(ArgumentError):
            SeparatedDriver(dev, panel_nb=0)
        with pytest.raises(ArgumentError):
            SeparatedDriver(dev, syrk_mode="magic")
        with pytest.raises(ArgumentError):
            SeparatedDriver(dev, panel_mode="magic")


class TestBlasStepDriver:
    def test_numerics(self):
        dev = Device()
        sizes = [5, 40, 100, 64]
        mats = make_spd_batch(sizes, "d", seed=5)
        b = VBatch.from_host(dev, mats)
        BlasStepDriver(dev).factorize(b, 100)
        assert max(residuals(mats, b)) < 1e-13

    def test_launch_count_exceeds_fused(self):
        """The whole point of fusion: far fewer launches."""
        dev1 = Device(execute_numerics=False)
        b1 = VBatch.allocate(dev1, [96] * 10, "d")
        blas = BlasStepDriver(dev1).factorize(b1, 96)
        dev2 = Device(execute_numerics=False)
        b2 = VBatch.allocate(dev2, [96] * 10, "d")
        fused = FusedDriver(dev2, sorting=False).factorize(b2, 96)
        assert blas.total_launches > fused.fused_launches
        # Per panel step, fusion collapses 3+ launches into one.
        assert blas.total_launches / blas.steps >= 3
        assert fused.fused_launches / fused.steps == 1

    def test_validation(self):
        dev = Device()
        with pytest.raises(ArgumentError):
            BlasStepDriver(dev, nb=0)


class TestPublicInterface:
    def test_lapack_like_interface(self):
        dev = Device()
        mats = make_spd_batch(SIZES, "d", seed=6)
        b = VBatch.from_host(dev, mats)
        res = potrf_vbatched(dev, b)
        assert res.max_n == max(SIZES)
        assert res.failed_count == 0
        assert res.gflops > 0
        assert max(residuals(mats, b)) < 1e-13

    def test_expert_interface_accepts_loose_max(self):
        dev = Device()
        mats = make_spd_batch([10, 20], "d", seed=7)
        b = VBatch.from_host(dev, mats)
        res = potrf_vbatched_max(dev, b, 64)  # > actual max: allowed
        assert res.failed_count == 0
        assert max(residuals(mats, b)) < 1e-13

    def test_max_smaller_than_batch_rejected(self):
        dev = Device()
        b = VBatch.from_host(dev, make_spd_batch([30], "d"))
        with pytest.raises(ArgumentError):
            potrf_vbatched_max(dev, b, 10)
        with pytest.raises(ArgumentError):
            potrf_vbatched_max(dev, b, 0)

    @pytest.mark.parametrize("approach", ["fused", "separated", "auto"])
    def test_approach_selection(self, approach):
        dev = Device()
        mats = make_spd_batch([40, 90], "d", seed=8)
        b = VBatch.from_host(dev, mats)
        res = potrf_vbatched(dev, b, PotrfOptions(approach=approach))
        expected = approach if approach != "auto" else "fused"
        assert res.approach == expected
        assert max(residuals(mats, b)) < 1e-13

    def test_auto_switches_to_separated_beyond_crossover(self):
        dev = Device(execute_numerics=False)
        big = DEFAULT_CROSSOVER[Precision.D] + 200
        b = VBatch.allocate(dev, [big, 50], "d")
        res = potrf_vbatched_max(dev, b, big)
        assert res.approach == "separated"

    def test_error_reporting_info_mode(self):
        dev = Device()
        bad = make_spd(12, "d", seed=9)
        bad[6, 6] = -1e4
        bad[7:, 6] = bad[6, 7:] = 0.0
        good = make_spd(8, "d", seed=10)
        b = VBatch.from_host(dev, [good, bad])
        res = potrf_vbatched(dev, b)
        assert res.failed_count == 1
        assert res.infos[0] == 0
        assert res.infos[1] == 7  # 1-based pivot of the failure

    def test_error_reporting_raise_mode(self):
        dev = Device()
        bad = np.eye(4)
        bad[2, 2] = -1.0
        b = VBatch.from_host(dev, [bad])
        with pytest.raises(BatchNumericalError) as ei:
            potrf_vbatched(dev, b, PotrfOptions(on_error="raise"))
        assert ei.value.infos == {0: 3}

    def test_options_validation(self):
        with pytest.raises(ArgumentError):
            PotrfOptions(approach="warp")
        with pytest.raises(ArgumentError):
            PotrfOptions(on_error="ignore")

    def test_result_timing_positive_and_flops_exact(self):
        from repro.flops import batch_flops

        dev = Device()
        mats = make_spd_batch([16, 48], "d", seed=11)
        b = VBatch.from_host(dev, mats)
        dev.reset_clock()
        res = potrf_vbatched(dev, b)
        assert res.elapsed > 0
        assert res.total_flops == pytest.approx(batch_flops([16, 48], "potrf", "d"))

    @pytest.mark.parametrize("prec,tol", [("s", 1e-4), ("d", 1e-13), ("c", 1e-4), ("z", 1e-13)])
    def test_all_precisions(self, prec, tol):
        dev = Device()
        mats = make_spd_batch([9, 33, 70], prec, seed=12)
        b = VBatch.from_host(dev, mats)
        res = potrf_vbatched(dev, b)
        assert res.failed_count == 0
        assert max(residuals(mats, b)) < tol

    @given(
        sizes=st.lists(st.integers(1, 96), min_size=1, max_size=12),
        approach=st.sampled_from(["fused", "separated"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_factorization_matches_scipy(self, sizes, approach):
        dev = Device()
        mats = make_spd_batch(sizes, "d", seed=sum(sizes))
        b = VBatch.from_host(dev, mats)
        potrf_vbatched(dev, b, PotrfOptions(approach=approach))
        for a, l in zip(mats, b.download_matrices()):
            ref = sla.cholesky(a, lower=True)
            np.testing.assert_allclose(np.tril(l), ref, rtol=1e-8, atol=1e-10)


class TestFixedAndPadding:
    def test_fixed_requires_constant_sizes(self):
        dev = Device()
        b = VBatch.from_host(dev, make_spd_batch([4, 8], "d"))
        with pytest.raises(ArgumentError, match="fixed-size"):
            potrf_batched_fixed(dev, b, 8)

    @pytest.mark.parametrize("approach", ["fused", "separated", "blas"])
    def test_fixed_numerics(self, approach):
        dev = Device()
        mats = make_spd_batch([48] * 5, "d", seed=13)
        b = VBatch.from_host(dev, mats)
        stats = potrf_batched_fixed(dev, b, 48, approach=approach)
        assert stats["approach"] == approach
        assert max(residuals(mats, b)) < 1e-13

    def test_fixed_fused_infeasible_size_rejected(self):
        dev = Device(execute_numerics=False)
        n = fused_max_feasible_size("d") + 64
        b = VBatch.allocate(dev, [n] * 2, "d")
        with pytest.raises(ArgumentError, match="infeasible"):
            potrf_batched_fixed(dev, b, n, approach="fused")

    def test_fixed_unknown_approach(self):
        dev = Device(execute_numerics=False)
        b = VBatch.allocate(dev, [8] * 2, "d")
        with pytest.raises(ArgumentError):
            potrf_batched_fixed(dev, b, 8, approach="hybrid")

    def test_padding_embeds_and_stays_spd(self):
        dev = Device()
        sizes = np.array([3, 5])
        mats = make_spd_batch(sizes, "d", seed=14)
        padded = pad_to_fixed(dev, sizes, 8, "d", host_matrices=mats)
        assert padded.max_size_host == 8
        for i, src in enumerate(mats):
            buf = padded.matrices[i].data
            np.testing.assert_array_equal(buf[: src.shape[0], : src.shape[0]], src)
            assert np.linalg.eigvalsh(buf).min() > 0  # still SPD

    def test_padding_factorization_correct(self):
        dev = Device()
        sizes = np.array([3, 6])
        mats = make_spd_batch(sizes, "d", seed=15)
        padded = pad_to_fixed(dev, sizes, 8, "d", host_matrices=mats)
        potrf_batched_fixed(dev, padded, 8, approach="fused")
        for i, (n, src) in enumerate(zip(sizes, mats)):
            l = np.tril(padded.matrices[i].data)[:n, :n]
            np.testing.assert_allclose(l @ l.T, src, rtol=1e-10, atol=1e-12)

    def test_padding_oom(self):
        dev = Device(execute_numerics=False)
        with pytest.raises(DeviceOutOfMemory):
            pad_to_fixed(dev, np.full(800, 100), 2000, "d")

    def test_padding_validation(self):
        dev = Device()
        with pytest.raises(ArgumentError):
            pad_to_fixed(dev, np.array([], dtype=np.int64), 8, "d")
        with pytest.raises(ArgumentError):
            pad_to_fixed(dev, np.array([10]), 8, "d")

    def test_padding_extra_flops_positive(self):
        extra = padding_extra_flops(np.array([10, 20]), 64)
        assert extra > 0


class TestCrossoverPolicy:
    def test_choose_by_size(self):
        pol = CrossoverPolicy(Precision.D)
        cross = pol.resolved_crossover()
        assert pol.choose(cross) == "fused"
        assert pol.choose(cross + 1) == "separated"

    def test_custom_crossover(self):
        pol = CrossoverPolicy(Precision.D, crossover_size=100)
        assert pol.choose(100) == "fused"
        assert pol.choose(101) == "separated"

    def test_clamped_to_feasibility(self):
        pol = CrossoverPolicy(Precision.D, crossover_size=10_000)
        assert pol.resolved_crossover() <= fused_max_feasible_size(Precision.D)

    def test_validation(self):
        with pytest.raises(ArgumentError):
            CrossoverPolicy(Precision.D).choose(0)

    def test_sp_crossover_later_than_dp(self):
        assert DEFAULT_CROSSOVER[Precision.S] > DEFAULT_CROSSOVER[Precision.D]
