"""The operation registry and the generic op driver (repro.ops)."""

import numpy as np
import pytest

from repro import flops as _flops
from repro.core import PlanCache, VBatch
from repro.device import Device, DeviceGroup
from repro.errors import ArgumentError
from repro.ops import OpOptions, run_op_vbatched
from repro.ops.registry import Operation, get_op, list_ops, register


class TestRegistryContents:
    def test_plannable_and_alias_split(self):
        assert list_ops(plannable=True) == ("geqrf", "gesvj", "getrf", "potrf")
        assert list_ops(plannable=False) == ("gesv", "posv")
        assert set(list_ops()) == set(list_ops(plannable=True)) | set(
            list_ops(plannable=False)
        )

    def test_unknown_op_raises_with_known_list(self):
        with pytest.raises(ArgumentError, match="unknown op 'syevd'"):
            get_op("syevd")

    def test_aliases_point_at_their_base(self):
        posv, gesv = get_op("posv"), get_op("gesv")
        assert posv.base == "potrf" and posv.planner is None
        assert gesv.base == "getrf" and gesv.planner is None
        assert posv.needs_rhs and gesv.needs_rhs
        # Factor accounting matches the base op exactly.
        for n in (7, 64, 300):
            assert posv.matrix_flops(n, "d") == get_op("potrf").matrix_flops(n, "d")
            assert gesv.matrix_flops(n, "d") == get_op("getrf").matrix_flops(n, "d")

    def test_flop_models_match_the_flops_module(self):
        for name in list_ops(plannable=True):
            desc = get_op(name)
            for prec in ("s", "d"):
                assert desc.matrix_flops(100, prec) == _flops.routine_flops(name)(
                    100, prec
                )

    def test_gesvj_is_real_only_and_spd_marks_potrf(self):
        assert get_op("gesvj").real_only
        assert get_op("potrf").spd_input and get_op("posv").spd_input
        assert not get_op("geqrf").spd_input

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ArgumentError, match="already registered"):
            register(Operation(name="potrf", doc="dup", matrix_flops=lambda n, p: 0.0))


class TestChooseApproach:
    def test_explicit_approach_validated(self):
        desc = get_op("geqrf")
        assert desc.choose_approach("d", 64, OpOptions(approach="fused")) == "fused"
        with pytest.raises(ArgumentError, match="bad approach"):
            OpOptions(approach="blocked")
        # Valid option value, but not an approach this op implements.
        with pytest.raises(ArgumentError, match="no 'fused' approach"):
            get_op("gesvj").choose_approach("d", 64, OpOptions(approach="fused"))

    def test_auto_uses_the_op_crossover_default(self):
        desc = get_op("geqrf")  # default_crossover = 96
        assert desc.default_crossover == 96
        assert desc.choose_approach("d", 64, OpOptions()) == "fused"
        assert desc.choose_approach("d", 200, OpOptions()) == "separated"

    def test_options_crossover_overrides_the_default(self):
        desc = get_op("getrf")
        small = desc.choose_approach("d", 64, OpOptions(crossover_size=32))
        assert small == "separated"


class TestOpOptions:
    def test_frozen_and_hashable(self):
        opts = OpOptions(panel_nb=32)
        assert hash(opts) == hash(OpOptions(panel_nb=32))
        assert opts != OpOptions()
        with pytest.raises(AttributeError):
            opts.panel_nb = 64

    def test_usable_as_cache_key_component(self):
        cache = {OpOptions(): "a", OpOptions(sorting=True): "b"}
        assert cache[OpOptions()] == "a"


class TestPlanCacheOpKey:
    def test_op_is_structural_in_the_key(self):
        dev = Device(execute_numerics=False)
        batch = VBatch.allocate(dev, np.array([32, 64], dtype=np.int64), "d")
        args = (dev, batch, 64, "fused", OpOptions())
        keys = {PlanCache.key_for(*args, op=op) for op in ("potrf", "geqrf", "getrf")}
        assert len(keys) == 3
        key = PlanCache.key_for(*args, op="geqrf")
        assert "geqrf" in key
        batch.free()

    def test_no_cross_op_cache_hits(self):
        """Regression: geqrf and getrf on the same batch shape must not
        collide even though both planners use the same approach labels
        and an identical options object."""
        dev = Device(execute_numerics=False)
        cache = PlanCache(max_plans=8)
        sizes = np.array([48, 32, 17], dtype=np.int64)
        for op in ("geqrf", "getrf", "potrf"):
            batch = VBatch.allocate(dev, sizes, "d")
            run_op_vbatched(dev, batch, 48, op, OpOptions(), plan_cache=cache)
            batch.free()
        assert cache.hits == 0 and cache.misses == 3 and len(cache) == 3
        # Same op again: now it hits.
        batch = VBatch.allocate(dev, sizes, "d")
        run_op_vbatched(dev, batch, 48, "geqrf", OpOptions(), plan_cache=cache)
        batch.free()
        assert cache.hits == 1 and len(cache) == 3


class TestRunOpVbatched:
    def test_rejects_unknown_and_alias_ops(self):
        dev = Device(execute_numerics=False)
        batch = VBatch.allocate(dev, np.array([16], dtype=np.int64), "d")
        with pytest.raises(ArgumentError, match="unknown op"):
            run_op_vbatched(dev, batch, 16, "qr", OpOptions())
        with pytest.raises(ArgumentError, match="serving alias"):
            run_op_vbatched(dev, batch, 16, "posv", OpOptions())
        batch.free()

    def test_potrf_tag_delegates_to_the_potrf_driver(self):
        dev = Device(execute_numerics=False)
        sizes = np.array([64, 40, 8], dtype=np.int64)
        batch = VBatch.allocate(dev, sizes, "d")
        result = run_op_vbatched(dev, batch, 64, "potrf", OpOptions())
        assert result.op == "potrf"
        assert result.total_flops == get_op("potrf").batch_flops(sizes, "d")
        assert result.launch_stats.executed_launches > 0
        batch.free()

    def test_gesvj_rejects_complex_precision(self):
        dev = Device(execute_numerics=False)
        batch = VBatch.allocate(dev, np.array([16], dtype=np.int64), "z")
        with pytest.raises(ArgumentError, match="real"):
            run_op_vbatched(dev, batch, 16, "gesvj", OpOptions())
        batch.free()

    def test_sharded_run_merges_outputs_and_stats(self):
        group = DeviceGroup.simulated(2, execute_numerics=False)
        dev = group.staging_device
        sizes = np.array([64, 48, 32, 24, 16, 8], dtype=np.int64)
        batch = VBatch.allocate(dev, sizes, "d")
        result = run_op_vbatched(dev, batch, 64, "geqrf", OpOptions(), devices=group)
        assert result.meta["shards"] == 2
        assert result.launch_stats.devices_used == 2
        assert result.outputs["taus"].shape == (len(sizes), 64)
        assert result.infos.shape == (len(sizes),)
        batch.free()


class TestServingPaddedFlops:
    def test_padded_flops_use_the_op_flop_model(self):
        from repro.serving.metrics import ServerMetrics

        sizes = [32, 17, 9]
        for op in ("potrf", "geqrf", "getrf", "gesvj"):
            useful, padded = ServerMetrics.padded_flops_for(sizes, "d", op=op)
            desc = get_op(op)
            assert useful == pytest.approx(desc.batch_flops(sizes, "d"))
            assert padded == pytest.approx(len(sizes) * desc.matrix_flops(32, "d"))
            assert padded >= useful
