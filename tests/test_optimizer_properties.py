"""Property-based happens-before preservation for the plan optimizer.

Satellite (c) of the optimizer issue: for EVERY pair of nodes whose
access sets conflict (a read-write or write-write overlap per
``node_access``), the optimized plan must keep a happens-before edge —
same-stream order, an event edge, or a barrier fence — in the pair's
node-list direction.  Checked at every optimization level across all
five planner drivers over hypothesis-generated size vectors.

This is the property that makes every pass sound at once: barrier
elision may only drop *redundant* fences, coalescing may only move
launches that commute with what they jump over, and LPT may spread
streams only where the dependence edges keep conflicting work ordered.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.batch import VBatch
from repro.core.blas_steps import BlasStepDriver
from repro.core.fused import FusedDriver
from repro.core.optimizer import ancestor_masks, node_access, optimize_plan
from repro.core.partial import plan_partial_potrf
from repro.core.plan import Barrier
from repro.core.separated import SeparatedDriver
from repro.device import Device

LEVELS = ("elide", "prune", "coalesce", "lpt", "elide+coalesce", "all")

PLANNERS = {
    "fused": lambda d, b, s: FusedDriver(d).plan(b, int(max(s))),
    "separated": lambda d, b, s: SeparatedDriver(d).plan(b, int(max(s))),
    "streamed": lambda d, b, s: SeparatedDriver(
        d, syrk_mode="streamed", syrk_streams=4
    ).plan(b, int(max(s))),
    "blas": lambda d, b, s: BlasStepDriver(d).plan(b, int(max(s))),
    "partial": lambda d, b, s: plan_partial_potrf(
        d, b, np.asarray(s, dtype=np.int64) // 2
    ),
}


def _hits(a, b):
    if not a or not b:
        return False
    if "**" in a or "**" in b:
        return True
    if "*" in a and any(isinstance(t, int) for t in b):
        return True
    if "*" in b and any(isinstance(t, int) for t in a):
        return True
    return bool(set(a) & set(b))


def _conflicts(acc1, acc2):
    r1, w1 = acc1
    r2, w2 = acc2
    return _hits(w1, w2) or _hits(w1, r2) or _hits(r1, w2)


def _assert_conflicts_ordered(plan, context):
    masks = ancestor_masks(plan)
    accesses = [
        None if isinstance(n, Barrier) else node_access(n) for n in plan.nodes
    ]
    for j, aj in enumerate(accesses):
        if aj is None:
            continue
        for i in range(j):
            ai = accesses[i]
            if ai is None:
                continue
            if _conflicts(ai, aj):
                assert masks[j] & (1 << i), (
                    f"{context}: conflict {i} -> {j} "
                    f"({plan.nodes[i]!r} vs {plan.nodes[j]!r}) lost its edge"
                )


@st.composite
def size_vectors(draw):
    count = draw(st.integers(min_value=1, max_value=24))
    return draw(
        st.lists(
            st.integers(min_value=1, max_value=160),
            min_size=count,
            max_size=count,
        )
    )


@given(sizes=size_vectors(), planner=st.sampled_from(sorted(PLANNERS)))
@settings(max_examples=40, deadline=None)
def test_conflicting_pairs_stay_ordered(sizes, planner):
    # Planners assume the driver's largest-first ordering.
    sizes = sorted(sizes, reverse=True)
    for level in LEVELS:
        dev = Device(execute_numerics=False)
        batch = VBatch.allocate(dev, np.asarray(sizes, dtype=np.int64), "d")
        plan = PLANNERS[planner](dev, batch, sizes)
        optimize_plan(plan, level)
        try:
            _assert_conflicts_ordered(plan, f"{planner}/{level}/sizes={sizes}")
        finally:
            plan.close()


@given(sizes=size_vectors())
@settings(max_examples=15, deadline=None)
def test_optimizer_meta_counts_are_consistent(sizes):
    sizes = sorted(sizes, reverse=True)
    dev = Device(execute_numerics=False)
    batch = VBatch.allocate(dev, np.asarray(sizes, dtype=np.int64), "d")
    plan = SeparatedDriver(dev, syrk_mode="streamed", syrk_streams=4).plan(
        batch, int(max(sizes))
    )
    before = len(plan.nodes)
    optimize_plan(plan, "all")
    rep = plan.meta["optimizer"]
    try:
        assert rep["nodes_before"] == before
        assert rep["nodes_after"] == len(plan.nodes)
        assert (
            rep["nodes_after"]
            == before
            - rep["barriers_elided"]
            - rep["launches_merged"]
            - rep["launches_pruned"]
        )
    finally:
        plan.close()
