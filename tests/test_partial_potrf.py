"""Tests for the vbatched partial Cholesky (repro.core.partial)."""

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings, strategies as st

from repro import Device, VBatch, make_spd, make_spd_batch
from repro.core.partial import partial_potrf_vbatched
from repro.errors import ArgumentError


def reference_partial(a, k):
    """L11, L21 and the Schur complement from a full factorization.

    Only the Schur's LOWER triangle is compared: the decision-layer
    syrk updates one triangle, per the BLAS contract.
    """
    l = sla.cholesky(a, lower=True)
    l11 = l[:k, :k]
    l21 = l[k:, :k]
    schur = a[k:, k:] - l21 @ l21.T
    return l11, l21, schur


class TestPartialPotrf:
    @pytest.mark.parametrize("n,k", [(8, 3), (20, 20), (33, 1), (64, 32), (17, 0)])
    def test_matches_reference(self, n, k):
        dev = Device()
        a = make_spd(n, "d", seed=n * 10 + k)
        b = VBatch.from_host(dev, [a])
        res = partial_potrf_vbatched(dev, b, np.array([k]))
        assert res.failed_count == 0
        out = b.download_matrices()[0]
        if k > 0:
            l11, l21, schur = reference_partial(a, k)
            np.testing.assert_allclose(np.tril(out[:k, :k]), l11, atol=1e-10)
            np.testing.assert_allclose(out[k:, :k], l21, atol=1e-10)
            np.testing.assert_allclose(np.tril(out[k:, k:]), np.tril(schur), atol=1e-10)
        else:
            np.testing.assert_array_equal(out, a)

    def test_mixed_k_batch(self):
        dev = Device()
        sizes = [10, 25, 40, 7]
        ks = np.array([4, 25, 13, 0])
        mats = make_spd_batch(sizes, "d", seed=3)
        b = VBatch.from_host(dev, mats)
        res = partial_potrf_vbatched(dev, b, ks)
        assert res.failed_count == 0
        assert res.gflops > 0
        for a, out, k in zip(mats, b.download_matrices(), ks):
            k = int(k)
            if k == 0:
                np.testing.assert_array_equal(out, a)
                continue
            l11, l21, schur = reference_partial(a, k)
            np.testing.assert_allclose(np.tril(out[:k, :k]), l11, atol=1e-9)
            if k < a.shape[0]:
                np.testing.assert_allclose(np.tril(out[k:, k:]), np.tril(schur), atol=1e-9)

    def test_schur_complement_stays_spd(self):
        dev = Device()
        a = make_spd(30, "d", seed=9)
        b = VBatch.from_host(dev, [a])
        partial_potrf_vbatched(dev, b, np.array([12]))
        tri = np.tril(b.download_matrices()[0][12:, 12:])
        schur = tri + np.tril(tri, -1).T  # symmetrize from the lower triangle
        assert np.linalg.eigvalsh(schur).min() > 0

    def test_flop_count_partial_of_full(self):
        from repro.core.partial import _partial_flops
        from repro.flops import potrf_flops

        assert _partial_flops(32, 32, "d") == pytest.approx(potrf_flops(32, "d"))
        assert 0 < _partial_flops(32, 8, "d") < potrf_flops(32, "d")

    def test_non_spd_pivot_reported(self):
        dev = Device()
        a = make_spd(10, "d", seed=4)
        a[3, 3] = -50.0
        a[4:, 3] = a[3, 4:] = 0.0
        b = VBatch.from_host(dev, [a])
        res = partial_potrf_vbatched(dev, b, np.array([6]))
        assert res.infos[0] == 4

    def test_validation(self):
        dev = Device()
        b = VBatch.from_host(dev, make_spd_batch([5, 5], "d"))
        with pytest.raises(ArgumentError):
            partial_potrf_vbatched(dev, b, np.array([3]))  # wrong length
        with pytest.raises(ArgumentError):
            partial_potrf_vbatched(dev, b, np.array([3, 6]))  # k > n
        with pytest.raises(ArgumentError):
            partial_potrf_vbatched(dev, b, np.array([-1, 2]))

    def test_all_zero_k_is_free(self):
        dev = Device(execute_numerics=False)
        b = VBatch.allocate(dev, [16, 16], "d")
        dev.reset_clock()
        res = partial_potrf_vbatched(dev, b, np.zeros(2, dtype=np.int64))
        assert res.elapsed == 0.0
        assert res.total_flops == 0.0

    @given(n=st.integers(2, 40), frac=st.floats(0.1, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_property_partial_consistent_with_full(self, n, frac):
        k = max(1, int(n * frac))
        dev = Device()
        a = make_spd(n, "d", seed=n * 31)
        b = VBatch.from_host(dev, [a])
        res = partial_potrf_vbatched(dev, b, np.array([k]))
        assert res.failed_count == 0
        out = b.download_matrices()[0]
        l11, l21, _ = reference_partial(a, k)
        np.testing.assert_allclose(np.tril(out[:k, :k]), l11, atol=1e-8)
        np.testing.assert_allclose(out[k:, :k], l21, atol=1e-8)
