"""LaunchStats accumulation semantics (merge identity, cache counters)."""

import pytest

from repro.core import LaunchStats, PlanCache, PotrfOptions, VBatch
from repro.core.driver import run_potrf_vbatched
from repro.device import Device
from repro import distributions as dist


def _stats(**kw):
    return LaunchStats(**kw)


class TestMergeEdgeCases:
    def test_empty_is_a_left_identity(self):
        acc = _stats()
        run = _stats(
            steps=3, fused_launches=3, executed_launches=5, plan_nodes=5,
            plan_cache_hit=True, plan_cache_hits=1, batches=1,
        )
        acc.merge(run)
        assert acc.as_dict() == pytest.approx(
            {**run.as_dict(), "devices_used": acc.devices_used}
        )
        # The fresh accumulator adopted the run's hit flag, not
        # False-and-True = False.
        assert acc.plan_cache_hit is True

    def test_merging_an_empty_run_changes_nothing(self):
        acc = _stats(steps=2, batches=1, plan_cache_hit=True, plan_cache_hits=1)
        before = acc.as_dict()
        acc.merge(_stats())  # e.g. a zero-shard merge
        assert acc.as_dict() == before

    def test_repeated_merges_sum_counters(self):
        acc = _stats()
        runs = [
            _stats(steps=1, executed_launches=2, batches=1, plan_cache_misses=1),
            _stats(steps=2, executed_launches=3, batches=1, plan_cache_hits=1,
                   plan_cache_hit=True),
            _stats(steps=4, executed_launches=5, batches=1, plan_cache_hits=1,
                   plan_cache_hit=True),
        ]
        for run in runs:
            acc.merge(run)
        assert acc.steps == 7
        assert acc.executed_launches == 10
        assert acc.batches == 3
        assert (acc.plan_cache_hits, acc.plan_cache_misses) == (2, 1)
        assert acc.plan_cache_hit is False  # first run missed: and-fold

    def test_merge_associates_through_a_fresh_accumulator(self):
        a = _stats(steps=1, batches=1, plan_cache_hit=True, plan_cache_hits=1)
        b = _stats(steps=2, batches=1, plan_cache_hit=True, plan_cache_hits=1)
        direct = _stats()
        direct.merge(a)
        direct.merge(b)
        via = _stats()
        inner = _stats()
        inner.merge(a)
        inner.merge(b)
        via.merge(inner)
        assert direct.as_dict() == via.as_dict()
        assert direct.plan_cache_hit is True

    def test_all_hit_runs_keep_the_flag(self):
        acc = _stats()
        for _ in range(4):
            acc.merge(_stats(batches=1, plan_cache_hit=True, plan_cache_hits=1))
        assert acc.plan_cache_hit is True
        assert acc.plan_cache_hits == 4

    def test_devices_used_is_the_accumulators_own(self):
        acc = _stats(devices_used=4)
        acc.merge(_stats(devices_used=2, batches=1, steps=1))
        assert acc.devices_used == 4  # bookkeeping, never summed

    def test_mapping_compatibility(self):
        s = _stats(steps=5)
        assert s["steps"] == 5
        assert "plan_cache_hits" in s.keys()
        with pytest.raises(KeyError):
            s["nope"]


class TestKeyedIdempotentMerge:
    """The retry-accounting contract (``merge(..., key=)``): a batch
    retried on another replica adds its physical execution work again
    but counts as ONE logical batch — no double-counted ``batches``,
    plan-cache hits, or steps in fleet-wide totals."""

    def _attempt(self):
        return _stats(
            steps=3, executed_launches=5, barriers=2, plan_nodes=4,
            plan_builds=1, plan_cache_misses=1, batches=1,
        )

    def test_same_key_counts_logical_fields_once(self):
        acc = _stats()
        key = ("fleet:r0", frozenset({1, 2, 3}))
        acc.merge(self._attempt(), key=key)   # failed attempt
        acc.merge(self._attempt(), key=key)   # retry of the same batch
        assert acc.batches == 1
        assert acc.steps == 3
        assert (acc.plan_nodes, acc.plan_builds, acc.plan_cache_misses) == (4, 1, 1)
        # Physical work really happened twice and must say so.
        assert acc.executed_launches == 10
        assert acc.barriers == 4

    def test_distinct_keys_add_everything(self):
        acc = _stats()
        acc.merge(self._attempt(), key=("r0", frozenset({1})))
        acc.merge(self._attempt(), key=("r1", frozenset({2})))
        assert acc.batches == 2
        assert acc.steps == 6
        assert acc.executed_launches == 10

    def test_retry_does_not_disturb_the_hit_fold(self):
        acc = _stats()
        key = ("r0", frozenset({7}))
        acc.merge(
            _stats(batches=1, plan_cache_hit=True, plan_cache_hits=1), key=key
        )
        # The retry missed the (warm) fold question entirely: same batch.
        acc.merge(
            _stats(batches=1, plan_cache_hit=False, plan_cache_misses=1), key=key
        )
        assert acc.plan_cache_hit is True
        assert (acc.plan_cache_hits, acc.plan_cache_misses) == (1, 0)

    def test_unkeyed_merges_are_unaffected(self):
        keyed = _stats()
        keyed.merge(self._attempt(), key=("r0", frozenset({1})))
        plain = _stats()
        plain.merge(self._attempt())
        assert plain.as_dict() == keyed.as_dict()
        # And interleaving unkeyed merges never consults the key set.
        keyed.merge(self._attempt())
        assert keyed.batches == 2

    def test_three_attempts_one_batch(self):
        acc = _stats()
        key = ("r2", frozenset({4, 5}))
        for _ in range(3):
            acc.merge(self._attempt(), key=key)
        assert acc.batches == 1
        assert acc.executed_launches == 15


class TestDriverPopulatesCacheCounters:
    def _run(self, cache):
        dev = Device(execute_numerics=False)
        sizes = dist.generate_sizes("uniform", 20, 64, seed=2)
        batch = VBatch.allocate(dev, sizes, "d")
        opts = PotrfOptions(approach="fused")
        return [
            run_potrf_vbatched(dev, batch, int(sizes.max()), opts, plan_cache=cache)
            for _ in range(3)
        ]

    def test_counters_track_cache_traffic(self):
        results = self._run(PlanCache())
        stats = [r.launch_stats for r in results]
        assert [s.plan_cache_misses for s in stats] == [1, 0, 0]
        assert [s.plan_cache_hits for s in stats] == [0, 1, 1]
        assert all(s.batches == 1 for s in stats)
        acc = LaunchStats()
        for s in stats:
            acc.merge(s)
        assert (acc.plan_cache_hits, acc.plan_cache_misses, acc.batches) == (2, 1, 3)

    def test_counters_stay_zero_without_a_cache(self):
        for r in self._run(None):
            s = r.launch_stats
            assert (s.plan_cache_hits, s.plan_cache_misses) == (0, 0)
            assert s.batches == 1
