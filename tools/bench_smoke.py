"""Benchmark smoke run for CI: regenerate the reduced figures and fail
on drift against the committed snapshots.

Usage:  PYTHONPATH=src python tools/bench_smoke.py

Exit status 0 means every series of every checked figure is within the
regression tolerance of its snapshot; 1 means the cost model moved (run
``python tools/update_snapshots.py`` only if the move is deliberate).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.bench.regression import compare_to_snapshot, load_snapshot

sys.path.insert(0, str(Path(__file__).resolve().parent))
from update_snapshots import SNAPSHOT_DIR, SNAPSHOTS  # noqa: E402

REL_TOL = 0.02


def main() -> int:
    failures = 0
    for name, build in SNAPSHOTS:
        path = SNAPSHOT_DIR / name
        if not path.exists():
            print(f"MISSING  {name}: no committed snapshot (run tools/update_snapshots.py)")
            failures += 1
            continue
        t0 = time.perf_counter()
        fig = build()
        elapsed = time.perf_counter() - t0
        try:
            drifts = compare_to_snapshot(fig, load_snapshot(path), rel_tol=REL_TOL)
        except AssertionError as exc:
            print(f"DRIFT    {name} ({elapsed:.2f}s):\n{exc}")
            failures += 1
            continue
        worst = max((d.max_rel_drift for d in drifts), default=0.0)
        print(f"OK       {name} ({elapsed:.2f}s): {len(drifts)} series, worst drift {worst * 100:.2f}%")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
