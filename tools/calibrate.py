"""Calibration probe: prints the anchor numbers the paper reports.

Run after touching any constant in repro/device/calibration.py or the
per-kernel efficiency attributes.  Each anchor lists the paper's
approximate value (read off the figures) next to the simulated one.
"""


from repro import Device, VBatch, potrf_batched_fixed, PotrfOptions
from repro.core.driver import run_potrf_vbatched
from repro.distributions import uniform_sizes
from repro.flops import batch_flops, gflops


def fixed_gflops(n, prec, approach, batch=1000):
    dev = Device(execute_numerics=False)
    b = VBatch.allocate(dev, [n] * batch, prec)
    dev.reset_clock()
    potrf_batched_fixed(dev, b, n, approach=approach)
    return gflops(batch_flops([n] * batch, "potrf", prec), dev.synchronize())


def vbatched_gflops(nmax, prec, batch=800, seed=0, **opts):
    dev = Device(execute_numerics=False)
    sizes = uniform_sizes(batch, nmax, seed=seed)
    b = VBatch.allocate(dev, sizes, prec)
    dev.reset_clock()
    r = run_potrf_vbatched(dev, b, nmax, PotrfOptions(**opts))
    return r.gflops


def main():
    print("== Fig 4 fixed-size: fused vs separated-BLAS (batch 1000) ==")
    print(f"{'prec':5}{'n':>5}{'fused':>9}{'blas':>9}{'speedup':>9}   paper: SP<=13x, DP<=7x, <1 at large n")
    for prec in ("s", "d"):
        for n in (8, 16, 32, 64, 128, 256, 384, 512):
            f = fixed_gflops(n, prec, "fused")
            bl = fixed_gflops(n, prec, "blas")
            print(f"{prec:5}{n:>5}{f:>9.1f}{bl:>9.1f}{f / bl:>9.2f}")

    print("\n== Fig 5-ish: vbatched fused best-config, uniform batch 3000 ==")
    print("paper: SP ~300 at Nmax 512; DP ~110 at Nmax 512")
    for prec, target in (("s", 300), ("d", 110)):
        g = vbatched_gflops(512, prec, batch=3000, approach="fused", etm="aggressive", sorting=True)
        print(f"  {prec}: {g:.1f}  (paper ~{target})")

    print("\n== Fig 7-ish: vbatched batch 800 uniform, fused vs separated ==")
    print("paper DP: separated ~220 at Nmax 1000; crossover ~430")
    for prec in ("s", "d"):
        for nmax in (128, 256, 384, 512, 768, 1000, 1500, 2000):
            row = [f"  {prec} {nmax:>5}"]
            for ap in ("fused", "separated"):
                try:
                    row.append(f"{vbatched_gflops(nmax, prec, approach=ap):9.1f}")
                except Exception:
                    row.append(f"{'n/a':>9}")
            print("".join(row))


if __name__ == "__main__":
    main()
