"""CI perf-regression smoke for the plan optimizer (PR 5 satellite).

Usage:  PYTHONPATH=src python tools/perf_smoke.py

Two checks, both on small fixed-seed workloads:

1. Reduced fig7 harness — warm wall clock (plan served from a
   PlanCache) with ``optimize="all"`` must be no slower than the
   unoptimized path at every size.  The optimizer's schedule
   precomputation makes warm re-execution launch-bound, so a loss here
   means a pass started paying more at execute time than it saves.

2. ``run_serve_bench`` with ``optimize="all"`` — the serving acceptance
   margins (size-aware >= 2x per-request) must still hold, and the
   greedy-window policy's padded-flops waste must stay below the 30%
   ceiling recorded against BENCH_pr3.json (measured 26%): optimized
   plans must not change what the batcher dispatches.

Exit status 0 = all checks pass, 1 = a perf regression.
"""

from __future__ import annotations

import sys
import time

from repro import distributions as dist
from repro.core import PlanCache, PotrfOptions, VBatch, potrf_vbatched_max
from repro.device import Device
from repro.serving import check_acceptance, run_serve_bench

REPS = 5
#: Warm-path noise allowance; the measured win is >2x, a 5% band only
#: catches real regressions.
WALL_TOL = 1.05
#: BENCH_pr3.json recorded 26% greedy-window waste; fail above this.
WASTE_CEILING = 0.30
FIG7_SIZES = (128, 256, 512)


def warm_wall(optimize: str, nmax: int, count: int = 300, seed: int = 0) -> float:
    """Best-of-REPS warm wall seconds for one cached fig7 cell."""
    device = Device(execute_numerics=False)
    sizes = dist.generate_sizes("uniform", count, nmax, seed=seed)
    batch = VBatch.allocate(device, sizes, "d")
    cache = PlanCache()
    opts = PotrfOptions()
    potrf_vbatched_max(
        device, batch, nmax, opts, plan_cache=cache, optimize=optimize
    )  # cold call: plan + optimize + cache
    best = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        potrf_vbatched_max(
            device, batch, nmax, opts, plan_cache=cache, optimize=optimize
        )
        best = min(best, time.perf_counter() - t0)
    return best


def main() -> int:
    failures = 0

    print("fig7-reduced warm wall clock (uniform, 300 matrices, cached plans):")
    for nmax in FIG7_SIZES:
        base = warm_wall("none", nmax)
        opt = warm_wall("all", nmax)
        verdict = "OK" if opt <= base * WALL_TOL else "REGRESSION"
        if verdict != "OK":
            failures += 1
        print(
            f"  {verdict:10} nmax={nmax:4}: none {base * 1e3:7.2f} ms, "
            f"all {opt * 1e3:7.2f} ms ({base / opt:5.2f}x)"
        )

    # Reduced BENCH_pr3 config (same max_size/max_batch/concurrency,
    # fewer requests): the 30% waste ceiling is calibrated against that
    # workload shape, and the tiny --smoke shape pads more by design.
    print("\nserve-bench (reduced pr3 config) with optimize=all:")
    report = run_serve_bench(
        requests=400, max_size=256, max_batch=32, concurrency=128, optimize="all"
    )
    for msg in check_acceptance(report):
        print(f"  REGRESSION serving acceptance: {msg}")
        failures += 1
    gw = report["policies"]["greedy-window"]["batching"]
    waste = gw["wasted_flops"] / gw["padded_flops"]
    verdict = "OK" if waste <= WASTE_CEILING else "REGRESSION"
    if verdict != "OK":
        failures += 1
    print(
        f"  {verdict:10} greedy-window padded-flops waste "
        f"{waste * 100:.1f}% (ceiling {WASTE_CEILING * 100:.0f}%)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
