"""Produce BENCH_pr5.json: the plan-optimizer PR's measured evidence.

Usage:  PYTHONPATH=src python tools/bench_pr5.py [--out BENCH_pr5.json]

Four measurements:

* fig7 warm wall clock, optimize none vs all (cached plans — the
  acceptance criterion's >= 1.2x warm speedup);
* serve-bench throughput with and without the optimizer;
* the 4-device fig3 workload traced, per-stream occupancy and simulated
  makespan before/after;
* the per-pass ablation tables from benchmarks/test_plan_optimizer.py
  attributing the win pass by pass.
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from benchmarks.test_plan_optimizer import LEVELS, ablation_table  # noqa: E402
from perf_smoke import FIG7_SIZES, warm_wall  # noqa: E402

from repro import distributions as dist  # noqa: E402
from repro.core import PotrfOptions, VBatch  # noqa: E402
from repro.core.driver import run_potrf_vbatched  # noqa: E402
from repro.device import DeviceGroup  # noqa: E402
from repro.observability import Tracer, activate, analyze_trace  # noqa: E402
from repro.serving import run_serve_bench  # noqa: E402


def fig7_section() -> dict:
    rows = {}
    for nmax in FIG7_SIZES:
        base = warm_wall("none", nmax)
        opt = warm_wall("all", nmax)
        rows[str(nmax)] = {
            "none_ms": round(base * 1e3, 3),
            "all_ms": round(opt * 1e3, 3),
            "speedup": round(base / opt, 2),
        }
    return rows


def serve_section() -> dict:
    out = {}
    for level in ("none", "all"):
        t0 = time.perf_counter()
        report = run_serve_bench(
            requests=400, max_size=256, max_batch=32, concurrency=128, optimize=level
        )
        wall = time.perf_counter() - t0
        gw = report["policies"]["greedy-window"]
        out[level] = {
            "bench_wall_s": round(wall, 2),
            "greedy_window": {
                "matrices_per_sim_s": round(gw["throughput"]["matrices_per_sim_s"], 1),
                "matrices_per_wall_s": round(gw["throughput"]["matrices_per_wall_s"], 1),
                "p95_latency_wall_ms": round(gw["latency_wall_s"]["p95"] * 1e3, 3),
                "waste_pct": round(
                    100 * gw["batching"]["wasted_flops"] / gw["batching"]["padded_flops"], 1
                ),
            },
        }
    base = out["none"]["greedy_window"]["matrices_per_wall_s"]
    opt = out["all"]["greedy_window"]["matrices_per_wall_s"]
    out["wall_throughput_speedup"] = round(opt / base, 2)
    return out


def fig3_occupancy_section() -> dict:
    """The 4-device fig3 workload (uniform, 400 matrices, max 256, fp64,
    timing-only), traced; per-stream occupancy and simulated makespan.

    Two plan shapes: the default (auto -> fused) path, which is
    single-stream at this size so the optimizer leaves occupancy alone,
    and the streamed separated path, where barrier elision + LPT are
    what the occupancy criterion is about.
    """
    out = {}
    for label, options in (
        ("auto", PotrfOptions()),
        ("streamed", PotrfOptions(approach="separated", syrk_mode="streamed")),
    ):
        out[label] = {}
        for level in ("none", "all"):
            group = DeviceGroup.simulated(4, execute_numerics=False)
            sizes = dist.generate_sizes("uniform", 400, 256, seed=0)
            batch = VBatch.allocate(group.devices[0], sizes, "d")
            tracer = Tracer()
            with activate(tracer):
                result = run_potrf_vbatched(
                    group.devices[0],
                    batch,
                    int(sizes.max()),
                    options,
                    devices=group,
                    optimize=level,
                )
            occ = [
                o for o in analyze_trace(tracer).occupancy
                if o.thread.startswith("stream")
            ]
            occs = [o.occupancy for o in occ]
            out[label][level] = {
                "makespan_ms": round(result.elapsed * 1e3, 4),
                "stream_tracks": len(occ),
                "mean_stream_occupancy_pct": round(100 * float(np.mean(occs)), 1),
                "min_stream_occupancy_pct": round(100 * float(np.min(occs)), 1),
                "max_stream_occupancy_pct": round(100 * float(np.max(occs)), 1),
            }
        gain = (
            out[label]["all"]["mean_stream_occupancy_pct"]
            - out[label]["none"]["mean_stream_occupancy_pct"]
        )
        out[label]["mean_occupancy_gain_pct_points"] = round(gain, 1)
    return out


def ablation_section() -> dict:
    out = {"levels": list(LEVELS)}
    for shape in ("streamed", "fused"):
        out[shape] = {}
        for distribution in ("uniform", "gaussian"):
            rows = ablation_table(shape, distribution)
            out[shape][distribution] = [
                {k: (round(v, 4) if isinstance(v, float) else v) for k, v in r.items()}
                for r in rows
            ]
    return out


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default=str(REPO / "BENCH_pr5.json"))
    args = parser.parse_args()

    report = {
        "pr": 5,
        "title": "LaunchPlan optimizer pass pipeline + parallel bucket execution",
        "date": datetime.date.today().isoformat(),
        "machine": (
            f"CI container, Python {platform.python_version()}, NumPy {np.__version__}"
        ),
        "method": (
            "fig7 warm wall clock = best of 5 cached-plan run_potrf_vbatched calls "
            "(uniform, 300 matrices, fp64, timing-only) per level. serve-bench on the "
            "reduced pr3 config (400 requests, max 256). fig3 occupancy from "
            "analyze_trace over a traced 4-device sharded run. Ablation tables from "
            "benchmarks/test_plan_optimizer.py (each pass alone, then all)."
        ),
        "fig7_warm_wall_clock": fig7_section(),
        "serve_bench": serve_section(),
        "fig3_4device_occupancy": fig3_occupancy_section(),
        "ablation": ablation_section(),
    }
    Path(args.out).write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(json.dumps(report, indent=1, sort_keys=True))
    print(f"\nwritten to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
