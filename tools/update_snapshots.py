"""Regenerate the committed figure snapshots (deliberate recalibration).

Usage:  python tools/update_snapshots.py

Run this ONLY after a justified cost-model change; the diff of
tests/snapshots/*.json then documents exactly what moved.
"""

from pathlib import Path

from repro.bench.figures import fig3_distributions, fig7_crossover
from repro.bench.regression import save_snapshot

SNAPSHOT_DIR = Path(__file__).resolve().parent.parent / "tests" / "snapshots"

SNAPSHOTS = [
    (
        "fig3_reduced.json",
        lambda: fig3_distributions(batch_count=400, max_size=256, bin_width=16),
    ),
    (
        "fig7_d_reduced.json",
        lambda: fig7_crossover(precision="d", nmax_values=(256, 512, 1024), batch_count=300),
    ),
]


def main():
    for name, fn in SNAPSHOTS:
        path = save_snapshot(fn(), SNAPSHOT_DIR / name)
        print(f"updated {path}")


if __name__ == "__main__":
    main()
