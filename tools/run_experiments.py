"""Run every figure at paper scale and emit the EXPERIMENTS.md tables.

Usage:  python tools/run_experiments.py > /tmp/experiments_body.md

Takes a few minutes; the output is the measured-results section pasted
into EXPERIMENTS.md (the surrounding commentary is maintained by hand).
"""

import time

from repro.bench import figures, format_figure


RUNS = [
    ("fig3", figures.fig3_distributions, dict(bin_width=32)),
    ("fig4-s", figures.fig4_fusion_fixed, dict(precision="s")),
    ("fig4-d", figures.fig4_fusion_fixed, dict(precision="d")),
    ("fig5-s", figures.fig5_fused_variants, dict(precision="s")),
    ("fig5-d", figures.fig5_fused_variants, dict(precision="d")),
    ("fig6-s", figures.fig6_fused_variants_gaussian, dict(precision="s")),
    ("fig6-d", figures.fig6_fused_variants_gaussian, dict(precision="d")),
    ("fig7-s", figures.fig7_crossover, dict(precision="s")),
    ("fig7-d", figures.fig7_crossover, dict(precision="d")),
    ("fig8-s", figures.fig8_overall, dict(precision="s")),
    ("fig8-d", figures.fig8_overall, dict(precision="d")),
    ("fig9-s", figures.fig9_overall_gaussian, dict(precision="s")),
    ("fig9-d", figures.fig9_overall_gaussian, dict(precision="d")),
    ("fig10", figures.fig10_energy, {}),
    ("aux", figures.aux_interface_overhead, {}),
]


def main():
    total0 = time.time()
    for tag, fn, kwargs in RUNS:
        t0 = time.time()
        fig = fn(**kwargs)
        print("```")
        print(format_figure(fig))
        print("```")
        print(f"_{tag}: {time.time() - t0:.1f} s simulated-run wall time_\n")
    print(f"_total wall time: {time.time() - total0:.1f} s_")


if __name__ == "__main__":
    main()
