"""Figure 4: kernel fusion vs separated BLAS on fixed-size batches.

Paper claims reproduced: large fused-over-separated speedups at small
sizes (13x SP / 7x DP on the K40c; the simulator compresses the extreme
end but preserves the shape), decaying with size, and dropping below
1x at the large end where the separated approach takes over (the
motivation for the crossover design).
"""

import numpy as np

from repro.bench.figures import fig4_fusion_fixed

SIZES = (8, 16, 32, 64, 128, 256, 384, 512, 768)


def test_fig4_single_precision(benchmark, figure_runner):
    fig = figure_runner(benchmark, fig4_fusion_fixed, "s", sizes=SIZES, batch_count=1000)
    speedup = fig.get("speedup").array

    assert fig.notes["max_speedup"] > 3.0
    # The peak lives at small sizes (n <= 64).
    assert np.nanargmax(speedup) <= SIZES.index(64)
    # Decay: the large-size end is far below the peak.
    assert speedup[-1] < 0.55 * fig.notes["max_speedup"]


def test_fig4_double_precision(benchmark, figure_runner):
    fig = figure_runner(benchmark, fig4_fusion_fixed, "d", sizes=SIZES, batch_count=1000)
    speedup = fig.get("speedup").array

    assert fig.notes["max_speedup"] > 3.0
    assert np.nanargmax(speedup) <= SIZES.index(64)
    # "A steady trend where the speedup is going below one."
    assert fig.notes["min_speedup"] < 1.05
    assert speedup[-1] == fig.notes["min_speedup"]


def test_fig4_sp_peak_exceeds_dp_peak(benchmark):
    """Paper: 13x SP vs 7x DP — the SP advantage is at least comparable."""

    def both():
        sp = fig4_fusion_fixed("s", sizes=(16, 32, 64), batch_count=600)
        dp = fig4_fusion_fixed("d", sizes=(16, 32, 64), batch_count=600)
        return sp, dp

    sp, dp = benchmark.pedantic(both, rounds=1, iterations=1, warmup_rounds=0)
    assert sp.notes["max_speedup"] > dp.notes["max_speedup"] * 0.95
