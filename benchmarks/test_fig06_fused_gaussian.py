"""Figure 6: the four fused-driver versions, Gaussian distribution.

Paper claim reproduced: "the impact of implicit sorting is much more
significant than the case of uniform distribution" — the Gaussian's
outliers far above the mean make the unsorted drivers start every
matrix together and pay heavy imbalance, which the window scheduler
removes.
"""

import numpy as np

from repro.bench.figures import fig5_fused_variants, fig6_fused_variants_gaussian

NMAX = (64, 128, 256, 384, 512)
BATCH = 3000


def test_fig6_single_precision(benchmark, figure_runner):
    fig = figure_runner(
        benchmark, fig6_fused_variants_gaussian, "s", nmax_values=NMAX, batch_count=BATCH
    )
    assert fig.notes["sorting_gain_classic_max"] > 0.15
    best = fig.get("etm-aggressive+sorting").array
    classic = fig.get("etm-classic").array
    assert np.all(best > classic)


def test_fig6_double_precision(benchmark, figure_runner):
    fig = figure_runner(
        benchmark, fig6_fused_variants_gaussian, "d", nmax_values=NMAX, batch_count=BATCH
    )
    assert fig.notes["sorting_gain_classic_max"] > 0.15
    assert fig.notes["sorting_gain_aggressive_max"] > 0.0


def test_fig6_sorting_matters_more_than_uniform(benchmark):
    """The headline Fig 6 claim: Gaussian sorting gains exceed uniform's."""

    def both():
        uni = fig5_fused_variants("d", nmax_values=(256, 512), batch_count=BATCH)
        gau = fig6_fused_variants_gaussian("d", nmax_values=(256, 512), batch_count=BATCH)
        return uni, gau

    uni, gau = benchmark.pedantic(both, rounds=1, iterations=1, warmup_rounds=0)
    assert gau.notes["sorting_gain_classic_max"] > uni.notes["sorting_gain_classic_max"]
    assert gau.notes["sorting_gain_aggressive_max"] > uni.notes["sorting_gain_aggressive_max"]
