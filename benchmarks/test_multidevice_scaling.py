"""Multi-device sharding sweep: speedup of a DeviceGroup vs device count.

The paper's experiments are single-K40c; the plan/execute split makes
the multi-GPU extension a partitioning problem.  This sweep factorizes
the Fig 3 uniform workload on groups of 1, 2, 4 and 8 simulated K40c
devices under the flops-balanced partitioner and reports the makespan
speedup, plus the plan-cache hit rate of a repeated sweep.
"""

import numpy as np

from repro.core import PlanCache, PotrfOptions, VBatch
from repro.core.driver import run_potrf_vbatched
from repro.device import Device, DeviceGroup
from repro.distributions import uniform_sizes

DEVICE_COUNTS = (1, 2, 4, 8)


def _sweep(sizes, counts=DEVICE_COUNTS, partition="flops"):
    rows = []
    for n_dev in counts:
        group = DeviceGroup.simulated(n_dev, execute_numerics=False, partition=partition)
        batch = VBatch.allocate(Device(execute_numerics=False), sizes, "d")
        res = run_potrf_vbatched(
            batch.device, batch, int(sizes.max()), PotrfOptions(), devices=group
        )
        rows.append((n_dev, res.elapsed, res.gflops))
    return rows


def test_speedup_vs_device_count(benchmark):
    sizes = uniform_sizes(400, 256, seed=11)
    rows = benchmark.pedantic(
        lambda: _sweep(sizes), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    base = rows[0][1]
    for n_dev, elapsed, gflops in rows:
        print(f"  devices={n_dev}: {elapsed * 1e3:8.4f} ms  {gflops:8.1f} Gflop/s  "
              f"speedup {base / elapsed:5.2f}x")
    elapsed_by_count = {n: e for n, e, _ in rows}
    # More devices never slow the batch down, and 4 visibly beat 1.
    assert elapsed_by_count[2] <= elapsed_by_count[1]
    assert elapsed_by_count[4] < elapsed_by_count[1]
    assert elapsed_by_count[8] <= elapsed_by_count[4] * 1.05
    assert elapsed_by_count[1] / elapsed_by_count[4] > 1.5


def test_partition_policies_on_skewed_batch(benchmark):
    """On a size-sorted batch every policy must stay flops-balanced;
    greedy LPT achieves the tightest load ratio of the three."""
    from repro import flops as _flops
    from repro.device import partition_sizes
    from repro.types import Precision

    sizes = np.sort(uniform_sizes(400, 256, seed=11))[::-1].copy()

    def run():
        out = {}
        for policy in ("flops", "round-robin", "contiguous"):
            elapsed = _sweep(sizes, counts=(4,), partition=policy)[0][1]
            parts = partition_sizes(sizes, Precision.D, 4, policy)
            loads = [
                sum(_flops.potrf_flops(int(n), Precision.D) for n in sizes[p])
                for p in parts
            ]
            out[policy] = (elapsed, max(loads) / min(loads))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    for policy, (elapsed, ratio) in out.items():
        print(f"  {policy:12s}: {elapsed * 1e3:8.4f} ms  load ratio {ratio:.3f}")
    for elapsed, ratio in out.values():
        assert ratio < 1.10  # every policy keeps shards within 10% flops
    assert out["flops"][1] <= min(r for _, r in out.values()) + 1e-12
    best = min(e for e, _ in out.values())
    assert all(e <= 1.25 * best for e, _ in out.values())


def test_plan_cache_hit_rate_on_repeated_sweep(benchmark):
    """Figure-harness hot path: repeated equal-size batches re-serve
    every shard plan from the cache."""
    sizes = uniform_sizes(400, 256, seed=11)

    def run():
        cache = PlanCache()
        group = DeviceGroup.simulated(4, execute_numerics=False)
        for _ in range(5):
            batch = VBatch.allocate(Device(execute_numerics=False), sizes, "d")
            run_potrf_vbatched(
                batch.device, batch, int(sizes.max()), PotrfOptions(),
                devices=group, plan_cache=cache,
            )
            batch.free()
        return cache

    cache = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print(f"\n  planner_calls={cache.planner_calls} hit_rate={cache.hit_rate:.2f}")
    assert cache.planner_calls == 4  # one plan per shard, built once
    assert cache.hit_rate >= 0.8  # 4 misses then 16 hits
