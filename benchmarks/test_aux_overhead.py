"""§III-A: overhead of the LAPACK-like interface's max computation.

"The latter wraps the first interface and calls GPU kernels to compute
these maximums.  In most cases, the overhead of computing the maximum
is negligible."
"""


from repro.bench.figures import aux_interface_overhead
from repro.core import PotrfOptions, VBatch, potrf_vbatched, potrf_vbatched_max
from repro.device import Device
from repro.distributions import uniform_sizes


def test_aux_overhead_negligible(benchmark, figure_runner):
    fig = figure_runner(
        benchmark, aux_interface_overhead, "d", nmax=256, batch_count=2000
    )
    fraction = fig.get("value").values[2]
    assert fraction < 0.02  # under 2% of the whole factorization


def test_both_interfaces_agree(benchmark):
    """The wrapping interface must behave exactly like the expert one."""
    sizes = uniform_sizes(500, 128, seed=3)

    def run_pair():
        dev_a = Device(execute_numerics=False)
        batch_a = VBatch.allocate(dev_a, sizes, "d")
        dev_a.reset_clock()
        auto = potrf_vbatched(dev_a, batch_a, PotrfOptions())

        dev_b = Device(execute_numerics=False)
        batch_b = VBatch.allocate(dev_b, sizes, "d")
        dev_b.reset_clock()
        expert = potrf_vbatched_max(dev_b, batch_b, int(sizes.max()), PotrfOptions())
        return auto, expert

    auto, expert = benchmark.pedantic(run_pair, rounds=1, iterations=1, warmup_rounds=0)
    assert auto.approach == expert.approach
    assert auto.max_n == expert.max_n
    # The LAPACK-like path pays only the tiny reduction+download on top.
    assert auto.elapsed <= expert.elapsed * 1.05
