"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation switches one modeled mechanism off (via calibration
overrides or driver knobs) and checks that the mechanism carries the
effect attributed to it — i.e. the figures' shapes come from modeled
causes, not accidental constants.
"""


from repro.core.batch import VBatch
from repro.core.driver import PotrfOptions, run_potrf_vbatched
from repro.core.fused import FusedDriver
from repro.device import Device, K40C_CALIBRATION
from repro.distributions import gaussian_sizes, uniform_sizes
from repro.flops import batch_flops, gflops

BATCH = 2000
NMAX = 512


def run_fused(calibration, etm, sorting, dist=gaussian_sizes, window_width=None, prec="d"):
    device = Device(calibration=calibration, execute_numerics=False)
    sizes = dist(BATCH, NMAX, seed=0)
    batch = VBatch.allocate(device, sizes, prec)
    device.reset_clock()
    FusedDriver(device, etm=etm, sorting=sorting, window_width=window_width).factorize(batch, NMAX)
    return gflops(batch_flops(sizes, "potrf", prec), device.synchronize())


def sorting_gain(calibration):
    base = run_fused(calibration, "classic", False)
    srt = run_fused(calibration, "classic", True)
    return srt / base - 1.0


def test_ablate_warp_memory_cap(benchmark):
    """Without the per-warp DRAM cap, unsorted launches lose less
    bandwidth, so implicit sorting buys less."""

    def run():
        with_cap = sorting_gain(K40C_CALIBRATION)
        no_cap = sorting_gain(K40C_CALIBRATION.with_overrides(warp_mem_bandwidth=1e15))
        return with_cap, no_cap

    with_cap, no_cap = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert with_cap > 0
    assert with_cap >= no_cap - 0.02


def test_ablate_etm_termination_cost(benchmark):
    """Free block termination shrinks (never grows) the sorting gain:
    part of what sorting removes is the dead-block dispatch tax."""

    def run():
        normal = sorting_gain(K40C_CALIBRATION)
        free_etm = sorting_gain(K40C_CALIBRATION.with_overrides(etm_terminate_overhead=0.0))
        return normal, free_etm

    normal, free_etm = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert normal >= free_etm - 0.02


def test_ablate_classic_idle_penalty(benchmark):
    """ETM-aggressive's edge over classic comes from the idle-warp
    penalty: zero the penalty and the gap collapses."""

    def gap(calibration):
        classic = run_fused(calibration, "classic", False)
        aggressive = run_fused(calibration, "aggressive", False)
        return aggressive / classic - 1.0

    def run():
        return gap(K40C_CALIBRATION), gap(K40C_CALIBRATION.with_overrides(classic_idle_warp_penalty=0.0))

    with_pen, without = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert with_pen > 0.05
    assert without < with_pen / 2


def test_ablate_window_width(benchmark):
    """Degenerate windows (one giant window) forfeit most of sorting's
    benefit: the window scheduler needs genuine size partitioning."""

    def run():
        tuned = run_fused(K40C_CALIBRATION, "classic", True)
        degenerate = run_fused(K40C_CALIBRATION, "classic", True, window_width=10**6)
        unsorted = run_fused(K40C_CALIBRATION, "classic", False)
        return tuned, degenerate, unsorted

    tuned, degenerate, unsorted = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert tuned > degenerate * 0.98
    # One giant window still removes dead blocks, so it sits between.
    assert degenerate >= unsorted * 0.95


def test_ablate_crossover_policy(benchmark):
    """Forcing the wrong approach at a far-off size must lose to auto."""

    def run_point(nmax, approach):
        device = Device(execute_numerics=False)
        sizes = uniform_sizes(800, nmax, seed=0)
        batch = VBatch.allocate(device, sizes, "d")
        device.reset_clock()
        res = run_potrf_vbatched(device, batch, nmax, PotrfOptions(approach=approach))
        return res.gflops

    def run():
        small_auto = run_point(128, "auto")
        small_sep = run_point(128, "separated")
        big_auto = run_point(1000, "auto")
        big_fused = run_point(1000, "fused")
        return small_auto, small_sep, big_auto, big_fused

    small_auto, small_sep, big_auto, big_fused = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    assert small_auto > small_sep
    assert big_auto > big_fused
