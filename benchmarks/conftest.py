"""Shared configuration for the figure-reproduction benchmarks.

Every benchmark runs its figure once per round (``pedantic`` with a
single round): the measured quantity is the simulated experiment's
wall time, and the *assertions* check the paper's qualitative claims
on the returned series.  Figures print their data tables so a
``pytest benchmarks/ --benchmark-only -s`` run shows the same rows the
paper plots.
"""

import pytest


def run_and_report(benchmark, fn, *args, **kwargs):
    """Run a figure function under pytest-benchmark, print its table."""
    from repro.bench import format_figure

    result = benchmark.pedantic(
        lambda: fn(*args, **kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(format_figure(result))
    return result


@pytest.fixture
def figure_runner():
    return run_and_report
