"""Application bench: the multifrontal solver on the vbatched kernels.

The paper's §I motivation made concrete: each elimination level of a
sparse factorization is a variable-size batch, and the batched level
sweep beats eliminating the same fronts one device call at a time
(which is how a naive GPU offload would do it).
"""

import networkx as nx
import numpy as np

from repro.core.batch import VBatch
from repro.core.partial import partial_potrf_vbatched
from repro.device import Device
from repro.multifrontal import analyze, factorize


def grid_system(grid):
    g = nx.convert_node_labels_to_integers(nx.grid_2d_graph(grid, grid))
    n = g.number_of_nodes()
    a = nx.laplacian_matrix(g).astype(float).toarray() + 4.0 * np.eye(n)
    return g, a


def test_factorization_scales_with_grid(benchmark):
    def run():
        out = {}
        for grid in (16, 24, 32, 48):
            g, a = grid_system(grid)
            sym = analyze(g, min_size=8)
            device = Device()
            fac = factorize(device, a, sym)
            out[grid] = (fac.elapsed, fac.total_flops, len(sym.fronts))
        return out

    table = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    for grid, (t, fl, fronts) in table.items():
        print(f"  {grid:3d}x{grid:<3d}: {fronts:4d} fronts, {fl / 1e6:8.2f} Mflop, "
              f"{t * 1e3:7.3f} ms simulated")
    # More unknowns -> more work and more simulated time, monotonically.
    times = [table[g][0] for g in (16, 24, 32, 48)]
    flops = [table[g][1] for g in (16, 24, 32, 48)]
    assert times == sorted(times)
    assert flops == sorted(flops)


def test_batched_levels_beat_serial_fronts(benchmark):
    """One vbatched call per level vs one device call per front."""

    def run():
        g, a = grid_system(32)
        sym = analyze(g, min_size=8)

        batched_dev = Device(execute_numerics=False)
        serial_dev = Device(execute_numerics=False)
        # Walk levels twice with identical (numerics-free) assembly
        # shapes: batched issues one call per level, serial one call
        # per front.
        for level in sym.levels:
            orders = [f.order for f in level]
            ks = [f.k for f in level]
            batch = VBatch.allocate(batched_dev, orders, "d")
            partial_potrf_vbatched(batched_dev, batch, np.array(ks))
            for order, k in zip(orders, ks):
                single = VBatch.allocate(serial_dev, [order], "d")
                partial_potrf_vbatched(serial_dev, single, np.array([k]))
        return batched_dev.synchronize(), serial_dev.synchronize()

    batched, serial = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print(f"\n  batched levels: {batched * 1e3:.3f} ms   serial fronts: {serial * 1e3:.3f} ms "
          f"({serial / batched:.1f}x)")
    assert batched < serial / 3  # the paper's whole point
