"""Figure 9: overall performance vs every baseline, Gaussian sizes.

Same ordering claims as Fig 8; the Gaussian concentration around
Nmax/2 narrows the GPU's edge at small Nmax (the paper reports
1.31-2.07x SP / 1.21-2.52x DP vs the best competitor).
"""

import numpy as np

from repro.bench.figures import fig8_overall, fig9_overall_gaussian

NMAX = (256, 512, 768, 1000, 1500, 2000)
BATCH = 800


def test_fig9_single_precision(benchmark, figure_runner):
    fig = figure_runner(
        benchmark, fig9_overall_gaussian, "s", nmax_values=NMAX, batch_count=BATCH
    )
    vb = fig.get("magma-vbatched").array
    dyn = fig.get("cpu-1core-dynamic").array
    assert np.all(vb > dyn)
    assert np.all(dyn > fig.get("cpu-1core-static").array)
    assert 1.0 < fig.notes["speedup_vs_best_competitor_min"] < 2.2
    assert fig.notes["speedup_vs_best_competitor_max"] < 4.5


def test_fig9_double_precision(benchmark, figure_runner):
    fig = figure_runner(
        benchmark, fig9_overall_gaussian, "d", nmax_values=NMAX, batch_count=BATCH
    )
    vb = fig.get("magma-vbatched").array
    assert np.all(vb > fig.get("cpu-1core-dynamic").array)
    assert np.all(vb > fig.get("magma-hybrid").array)
    assert 1.0 < fig.notes["speedup_vs_best_competitor_min"] < 2.0
    assert 1.5 < fig.notes["speedup_vs_best_competitor_max"] < 3.5
    assert fig.notes["padding_oom_points"] >= 1


def test_fig9_gaussian_narrows_small_nmax_edge(benchmark):
    """The Gaussian's mid-size mass suits the CPU cache: the GPU's
    minimum speedup drops relative to the uniform workload."""

    def both():
        return (
            fig8_overall("d", nmax_values=(256, 512), batch_count=BATCH),
            fig9_overall_gaussian("d", nmax_values=(256, 512), batch_count=BATCH),
        )

    uni, gau = benchmark.pedantic(both, rounds=1, iterations=1, warmup_rounds=0)
    assert (
        gau.notes["speedup_vs_best_competitor_min"]
        <= uni.notes["speedup_vs_best_competitor_min"] + 0.05
    )
