"""Ablation bench for the plan-optimizer pass pipeline (PR 5 tentpole).

Toggles each pass in isolation (none/elide/prune/coalesce/lpt) and all
together, over uniform and gaussian size distributions, for the two
plan shapes the passes target: the streamed separated plan (barrier-
and-launch heavy) and the fused plan (few launches, bucket-parallel).
The printed per-pass table is the attribution evidence BENCH_pr5.json
records: which pass buys which share of the simulated-time and warm
wall-clock win.
"""

import time

from repro.core.batch import VBatch
from repro.core.fused import FusedDriver
from repro.core.optimizer import optimize_plan
from repro.core.separated import SeparatedDriver
from repro.device import Device, PlanExecutor
from repro.distributions import generate_sizes

LEVELS = ("none", "elide", "prune", "coalesce", "lpt", "all")
COUNT = 400
NMAX = 384
REPS = 5


def _plan_for(shape, device, batch, max_n):
    if shape == "fused":
        return FusedDriver(device).plan(batch, max_n)
    return SeparatedDriver(device, syrk_mode="streamed", syrk_streams=8).plan(
        batch, max_n
    )


def measure(shape, distribution, level, seed=0):
    """One ablation cell: optimize once, execute warm; report both clocks."""
    device = Device(execute_numerics=False)
    sizes = generate_sizes(distribution, COUNT, NMAX, seed=seed)
    batch = VBatch.allocate(device, sizes, "d")
    plan = _plan_for(shape, device, batch, int(sizes.max()))
    optimize_plan(plan, level)
    report = dict(plan.meta.get("optimizer", {}))
    executor = PlanExecutor(device)
    try:
        device.reset_clock()
        t0 = device.synchronize()
        executor.execute(plan)
        sim = device.synchronize() - t0
        wall = float("inf")
        for _ in range(REPS):
            w0 = time.perf_counter()
            executor.execute(plan)
            wall = min(wall, time.perf_counter() - w0)
    finally:
        plan.close()
    return {
        "level": level,
        "sim_ms": sim * 1e3,
        "wall_ms": wall * 1e3,
        "nodes": report.get("nodes_after"),
        "barriers_elided": report.get("barriers_elided", 0),
        "launches_merged": report.get("launches_merged", 0),
        "launches_pruned": report.get("launches_pruned", 0),
        "tasks_pruned": report.get("tasks_pruned", 0),
        "groups": report.get("groups_rebalanced", 0),
    }


def ablation_table(shape, distribution, seed=0):
    return [measure(shape, distribution, level, seed=seed) for level in LEVELS]


def _print_table(shape, distribution, rows):
    base = rows[0]
    print(f"\n[{shape} / {distribution}]  {COUNT} matrices <= {NMAX}, warm x{REPS}")
    print(f"{'level':>10} {'sim_ms':>9} {'sim_x':>7} {'wall_ms':>9} {'wall_x':>7} "
          f"{'elided':>7} {'merged':>7} {'pruned':>7} {'tasks':>7} {'groups':>7}")
    for r in rows:
        print(f"{r['level']:>10} {r['sim_ms']:>9.3f} {base['sim_ms'] / r['sim_ms']:>7.2f} "
              f"{r['wall_ms']:>9.3f} {base['wall_ms'] / r['wall_ms']:>7.2f} "
              f"{r['barriers_elided']:>7} {r['launches_merged']:>7} "
              f"{r['launches_pruned']:>7} {r['tasks_pruned']:>7} {r['groups']:>7}")


def _run_shape(shape):
    out = {}
    for distribution in ("uniform", "gaussian"):
        rows = ablation_table(shape, distribution)
        _print_table(shape, distribution, rows)
        out[distribution] = rows
    return out


def test_ablate_streamed_plan_passes(benchmark):
    """Streamed separated plans: elision + coalescing carry the win.

    Every single pass must leave simulated time no worse than the
    unoptimized plan, and the full pipeline must beat it on the warm
    wall clock (the schedule cache makes re-execution launch-bound).
    """
    tables = benchmark.pedantic(
        lambda: _run_shape("streamed"), rounds=1, iterations=1, warmup_rounds=0
    )
    for distribution, rows in tables.items():
        base = rows[0]
        by_level = {r["level"]: r for r in rows}
        for r in rows:
            # Coalescing trades a few percent of modeled makespan (one
            # merged launch packs blocks worse than a same-stream sum)
            # for an order-of-magnitude host-side launch win.
            assert r["sim_ms"] <= base["sim_ms"] * 1.03, (distribution, r)
        assert by_level["all"]["sim_ms"] <= base["sim_ms"] * 1.02
        assert by_level["elide"]["barriers_elided"] > 0
        assert by_level["coalesce"]["launches_merged"] > 0
        assert by_level["prune"]["tasks_pruned"] > 0
        assert by_level["all"]["wall_ms"] < base["wall_ms"] / 2


def test_ablate_fused_plan_passes(benchmark):
    """Fused plans: pruning + LPT bucket rebalancing carry the win."""
    tables = benchmark.pedantic(
        lambda: _run_shape("fused"), rounds=1, iterations=1, warmup_rounds=0
    )
    for distribution, rows in tables.items():
        base = rows[0]
        by_level = {r["level"]: r for r in rows}
        for r in rows:
            assert r["sim_ms"] <= base["sim_ms"] * 1.03, (distribution, r)
        assert by_level["all"]["sim_ms"] <= base["sim_ms"] * (1 + 1e-9)
        assert by_level["lpt"]["groups"] > 0
        assert by_level["all"]["wall_ms"] < base["wall_ms"] / 2
