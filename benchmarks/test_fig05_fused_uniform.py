"""Figure 5: the four fused-driver versions, uniform distribution.

Paper claims reproduced: ETM-aggressive beats ETM-classic (11-35%
there; the mechanisms yield a compressed but same-signed gap here);
implicit sorting improves both ETM modes; the best configuration is
ETM-aggressive + implicit sorting.
"""

import numpy as np

from repro.bench.figures import fig5_fused_variants

NMAX = (64, 128, 256, 384, 512)
BATCH = 3000


def _assert_variant_ordering(fig):
    classic = fig.get("etm-classic").array
    aggressive = fig.get("etm-aggressive").array
    classic_sorted = fig.get("etm-classic+sorting").array
    best = fig.get("etm-aggressive+sorting").array

    # Aggressive never loses to classic (same launches, finer ETM).
    assert np.all(aggressive >= classic * 0.99)
    # Sorting helps the classic driver everywhere.
    assert np.all(classic_sorted >= classic * 0.99)
    # The paper's best configuration dominates plain classic clearly.
    assert np.all(best > classic)
    assert fig.notes["aggressive_gain_max"] > 0.05
    assert fig.notes["sorting_gain_classic_max"] > 0.08


def test_fig5_single_precision(benchmark, figure_runner):
    fig = figure_runner(
        benchmark, fig5_fused_variants, "s", nmax_values=NMAX, batch_count=BATCH
    )
    _assert_variant_ordering(fig)
    # Performance grows with Nmax over this range (more work per launch).
    best = fig.get("etm-aggressive+sorting").array
    assert best[-1] > best[0]


def test_fig5_double_precision(benchmark, figure_runner):
    fig = figure_runner(
        benchmark, fig5_fused_variants, "d", nmax_values=NMAX, batch_count=BATCH
    )
    _assert_variant_ordering(fig)
    # DP runs at a fraction of SP (64 vs 192 lanes per SMX).
    sp_probe = fig5_fused_variants("s", nmax_values=(256,), batch_count=BATCH)
    dp_at_256 = fig.get("etm-aggressive+sorting").values[NMAX.index(256)]
    sp_at_256 = sp_probe.get("etm-aggressive+sorting").values[0]
    assert dp_at_256 < sp_at_256
