"""Device-portability bench: the framework on sibling Kepler boards.

The paper's framework is device-agnostic — the kernels read their
limits from the device description.  Re-running the headline workload
on a K20X (fewer, slower SMs, less bandwidth) and a Titan Black
(faster clock, more bandwidth) must reorder throughput accordingly,
and the K20X's smaller 6 GB memory must move the padding-OOM threshold.
"""


from repro.baselines.gpu import run_padding, run_vbatched
from repro.core.batch import VBatch
from repro.core.driver import PotrfOptions
from repro.device import Device, K20X, K40C, TITAN_BLACK
from repro.distributions import uniform_sizes
from repro.errors import DeviceOutOfMemory

SPECS = (K20X, K40C, TITAN_BLACK)


def run_on(spec, nmax=512, batch=800, prec="d"):
    device = Device(spec=spec, execute_numerics=False)
    vb = VBatch.allocate(device, uniform_sizes(batch, nmax, seed=0), prec)
    device.reset_clock()
    return run_vbatched(device, vb, nmax, PotrfOptions()).gflops


def test_throughput_orders_by_hardware(benchmark):
    def run():
        return {spec.name: run_on(spec) for spec in SPECS}

    table = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    for name, g in table.items():
        print(f"  {name:30} {g:7.1f} Gflop/s")
    assert table[TITAN_BLACK.name] > table[K40C.name] > table[K20X.name]
    # Ratios stay within plausible hardware bounds (no runaway scaling).
    assert table[TITAN_BLACK.name] / table[K20X.name] < 1.6


def test_padding_oom_moves_with_memory(benchmark):
    """6 GB boards run out of padded memory earlier than the 12 GB K40c."""

    def attempt(spec, nmax):
        device = Device(spec=spec, execute_numerics=False)
        sizes = uniform_sizes(800, nmax, seed=0)
        try:
            run_padding(device, sizes, nmax, "d")
            return True
        except DeviceOutOfMemory:
            return False

    def run():
        return attempt(K40C, 1024), attempt(K20X, 1024), attempt(K20X, 700)

    k40_1024, k20_1024, k20_700 = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    assert k40_1024          # 800 x 1024^2 doubles = 6.25 GiB fits in 12 GiB
    assert not k20_1024      # ... but not in 6 GiB
    assert k20_700           # 2.9 GiB fits in 6 GiB
