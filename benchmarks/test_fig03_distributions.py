"""Figure 3: histograms of the matrix-size distributions (paper §IV-B).

Paper claims reproduced here: with batch 2000 and Nmax 512 the uniform
generator covers nearly every size ("most sizes appear at least once,
with the majority appearing between 1 and 5 times"), while the Gaussian
one concentrates mass around Nmax/2 with sparse boundaries.
"""

import numpy as np

from repro.bench.figures import fig3_distributions
from repro.distributions import uniform_sizes


def test_fig3_histograms(benchmark, figure_runner):
    fig = figure_runner(benchmark, fig3_distributions, batch_count=2000, max_size=512, bin_width=8)

    uniform = fig.get("uniform").array
    gaussian = fig.get("gaussian").array
    assert uniform.sum() == 2000
    assert gaussian.sum() == 2000

    # Uniform: flat-ish across the range; every 8-wide bin populated.
    assert np.all(uniform > 0)
    assert uniform.max() / max(uniform.min(), 1) < 6

    # Gaussian: peak near the middle, sparse boundaries.
    mid = len(gaussian) // 2
    assert gaussian[mid - 8 : mid + 8].sum() > 4 * gaussian[:8].sum()
    assert gaussian[mid - 8 : mid + 8].sum() > 4 * gaussian[-8:].sum()


def test_fig3_paper_occurrence_claim(benchmark):
    """Most sizes appear 1-5 times in a 2000-sample uniform draw."""
    sizes = benchmark.pedantic(
        lambda: uniform_sizes(2000, 512, seed=0), rounds=1, iterations=1, warmup_rounds=0
    )
    values, counts = np.unique(sizes, return_counts=True)
    assert values.size > 0.9 * 512  # most sizes appear at least once
    share_1_to_5 = np.count_nonzero((counts >= 1) & (counts <= 5)) / values.size
    assert share_1_to_5 > 0.6
