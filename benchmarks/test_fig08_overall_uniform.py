"""Figure 8: overall performance vs every baseline, uniform sizes.

Paper claims reproduced: the vbatched routine beats all alternatives;
the dynamic one-core-per-matrix CPU scheme is the best competitor and
beats its static variant; the multithreaded-MKL and MAGMA-hybrid
schemes trail badly; the padding baseline wastes flops and runs out of
device memory at the large end (truncated curve); speedups vs the best
competitor fall in the paper's reported band (1.11-2.42x SP,
1.51-2.29x DP — the simulator lands in an overlapping range).
"""

import numpy as np

from repro.bench.figures import fig8_overall

NMAX = (256, 512, 768, 1000, 1500, 2000)
BATCH = 800


def _assert_overall_ordering(fig):
    vb = fig.get("magma-vbatched").array
    dyn = fig.get("cpu-1core-dynamic").array
    stat = fig.get("cpu-1core-static").array
    mt = fig.get("cpu-mkl-mt").array
    hyb = fig.get("magma-hybrid").array

    assert np.all(vb > dyn)          # proposed routine always wins
    assert np.all(dyn > stat)        # dynamic beats static scheduling
    assert np.all(dyn > mt)          # one-core-per-matrix beats all-cores-on-one
    assert np.all(mt > hyb)          # hybrid is the worst choice here
    assert fig.notes["speedup_vs_best_competitor_min"] > 1.0


def test_fig8_single_precision(benchmark, figure_runner):
    fig = figure_runner(benchmark, fig8_overall, "s", nmax_values=NMAX, batch_count=BATCH)
    _assert_overall_ordering(fig)
    assert 1.0 < fig.notes["speedup_vs_best_competitor_min"] < 2.5
    assert 1.5 < fig.notes["speedup_vs_best_competitor_max"] < 4.5


def test_fig8_double_precision(benchmark, figure_runner):
    fig = figure_runner(benchmark, fig8_overall, "d", nmax_values=NMAX, batch_count=BATCH)
    _assert_overall_ordering(fig)
    assert 1.0 < fig.notes["speedup_vs_best_competitor_min"] < 2.0
    assert 1.5 < fig.notes["speedup_vs_best_competitor_max"] < 3.5
    # "Up to 3x faster" than the padding workaround.
    assert fig.notes["speedup_vs_padding_max"] > 2.5
    # "The performance graphs of the padding technique look truncated
    # due to running out of the GPU memory."
    assert fig.notes["padding_oom_points"] >= 1


def test_fig8_padding_oom_threshold(benchmark):
    """800 padded 2000x2000 doubles = 25.6 GB > the K40c's 12 GB."""
    fig = benchmark.pedantic(
        lambda: fig8_overall("d", nmax_values=(1000, 2000), batch_count=800),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    pad = fig.get("fixed-batched+padding").array
    assert not np.isnan(pad[0])  # 800 x 1000^2 x 8 B = 6.4 GB fits
    assert np.isnan(pad[1])      # 25.6 GB does not
