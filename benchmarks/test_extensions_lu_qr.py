"""Benches for the LU/QR extensions and the syrk-alternative study.

Not a paper figure — the §V future-work directions, measured: the
foundation kernels carry LU and QR at throughputs ordered the way their
arithmetic intensities predict, and the streamed-syrk alternative of
§III-E3 loses to the vbatched syrk for large batches (launch-overhead
serialization), which is why MAGMA's tuning picks between them.
"""


from repro.core.batch import VBatch
from repro.core.driver import PotrfOptions, run_potrf_vbatched
from repro.core.separated import SeparatedDriver
from repro.device import Device
from repro.distributions import uniform_sizes
from repro.extensions import geqrf_vbatched, getrf_vbatched
from repro.flops import batch_flops, gflops

BATCH = 500
NMAX = 512


def _fresh(prec="d", nmax=NMAX, batch=BATCH):
    device = Device(execute_numerics=False)
    sizes = uniform_sizes(batch, nmax, seed=0)
    vb = VBatch.allocate(device, sizes, prec)
    device.reset_clock()
    return device, vb, sizes


def test_factorization_family_throughput(benchmark):
    """potrf / getrf / geqrf side by side on one workload."""

    def run():
        out = {}
        device, vb, sizes = _fresh()
        out["potrf"] = run_potrf_vbatched(device, vb, NMAX, PotrfOptions()).gflops
        device, vb, sizes = _fresh()
        out["getrf"] = getrf_vbatched(device, vb, NMAX).gflops
        device, vb, sizes = _fresh()
        out["geqrf"] = geqrf_vbatched(device, vb, NMAX).gflops
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    for k, v in out.items():
        print(f"  {k}: {v:7.1f} Gflop/s")
    # All run at real throughput; QR's gemm-rich update gives it the
    # highest rate, Cholesky's triangular work the lowest per flop.
    for v in out.values():
        assert v > 20.0
    assert out["geqrf"] > out["potrf"] * 0.8


def test_streamed_vs_vbatched_syrk(benchmark):
    """§III-E3: the decision layer vs per-matrix streamed kernels."""

    def run_mode(mode):
        device, vb, sizes = _fresh(nmax=768, batch=400)
        SeparatedDriver(device, syrk_mode=mode).factorize(vb, 768)
        return gflops(batch_flops(sizes, "potrf", "d"), device.synchronize())

    def run():
        return run_mode("vbatched"), run_mode("streamed")

    vbatched, streamed = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print(f"\n  vbatched syrk: {vbatched:.1f}  streamed syrk: {streamed:.1f} Gflop/s")
    # The paper leaves the winner to a tuning process "beyond the scope
    # of this paper": on this model they trade within a narrow band —
    # the streamed path hides its launch cost behind async pipelining,
    # the vbatched path avoids per-matrix kernels but carries dead
    # blocks.  Assert they are genuine alternatives, not a blowout.
    assert 0.8 < vbatched / streamed < 1.25


def test_lu_and_qr_scale_with_size(benchmark):
    def run():
        curves = {}
        for routine, fn in (("getrf", getrf_vbatched), ("geqrf", geqrf_vbatched)):
            vals = []
            for nmax in (128, 256, 512):
                device, vb, _ = _fresh(nmax=nmax, batch=300)
                vals.append(fn(device, vb, nmax).gflops)
            curves[routine] = vals
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    for routine, vals in curves.items():
        assert vals[-1] > vals[0], routine  # throughput grows with size
