"""Serving-policy shoot-out: size-aware windows vs FIFO vs per-request.

The PR-3 acceptance run in benchmark form: one fixed-seed request
stream through the closed-loop load generator under every policy.
Size-aware aggregation must clear 2x the per-request throughput and
waste fewer padded flops than arrival-order FIFO windows — the serving
restatement of the paper's implicit-sorting claim.
"""

from repro.serving import check_acceptance, run_serve_bench


def test_policy_shootout(benchmark):
    report = benchmark.pedantic(
        lambda: run_serve_bench(
            requests=800, max_size=256, seed=0, max_batch=32, concurrency=128
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    print()
    for name, snap in report["policies"].items():
        thr, batching = snap["throughput"], snap["batching"]
        waste = 100.0 * (1.0 - batching["efficiency"]) if batching["padded_flops"] else 0.0
        print(f"  {name:>14}: {thr['batches']:4d} batches  "
              f"{thr['matrices_per_sim_s']:9.0f} mat/sim_s  waste {waste:6.2f}%")
    assert check_acceptance(report, min_speedup=2.0) == []

    speedups = report["comparison"]["speedup_vs_per_request"]
    # Batching at all is a big win; size-awareness beats size-blind FIFO.
    assert speedups["fifo"] >= 2.0
    assert speedups["greedy-window"] > speedups["fifo"]
    assert speedups["size-bucket"] > speedups["fifo"]

    eff = {k: v["batching"]["efficiency"] for k, v in report["policies"].items()}
    assert eff["size-bucket"] > eff["fifo"]
    assert eff["greedy-window"] > eff["fifo"]


def test_multi_device_serving_scales(benchmark):
    # Sharding pays off once each window is large enough to split: serve
    # with wide windows (max_batch 256) over a deep closed loop.
    def run():
        return {
            n: run_serve_bench(
                requests=600, max_size=384, seed=0, max_batch=256,
                concurrency=512, device_count=n, policies=("greedy-window",),
            )["policies"]["greedy-window"]["throughput"]["matrices_per_sim_s"]
            for n in (1, 4)
        }

    thr = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print(f"\n  greedy-window mat/sim_s: 1 dev {thr[1]:.0f}, 4 dev {thr[4]:.0f} "
          f"({thr[4] / thr[1]:.2f}x)")
    assert thr[4] > 1.5 * thr[1]  # sharded dispatch really uses the group
