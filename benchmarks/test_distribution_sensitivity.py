"""Distribution-sensitivity study (paper §V future work).

"It is also important to test the impact of different size
distributions on performance, and how the variation in sizes might
affect the crossover points."  We sweep the fused driver's best and
worst configurations over four generators; the sorting gain should
track the distribution's size *spread* (bimodal worst-case for the
unsorted driver, constant needing no sorting at all).
"""


from repro.core.batch import VBatch
from repro.core.fused import FusedDriver
from repro.device import Device
from repro.distributions import DISTRIBUTIONS
from repro.flops import batch_flops, gflops

BATCH = 2000
NMAX = 384
DISTS = ("constant", "uniform", "gaussian", "bimodal", "exponential")


def run_config(dist_name, etm, sorting):
    device = Device(execute_numerics=False)
    sizes = DISTRIBUTIONS[dist_name](BATCH, NMAX, seed=0)
    batch = VBatch.allocate(device, sizes, "d")
    device.reset_clock()
    FusedDriver(device, etm=etm, sorting=sorting).factorize(batch, NMAX)
    return gflops(batch_flops(sizes, "potrf", "d"), device.synchronize())


def test_distribution_sweep(benchmark):
    def run():
        table = {}
        for name in DISTS:
            base = run_config(name, "classic", False)
            best = run_config(name, "aggressive", True)
            table[name] = (base, best, best / base - 1.0)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    for name, (base, best, gain) in table.items():
        print(f"  {name:12} base {base:7.1f}  best {best:7.1f}  gain {gain * 100:5.1f}%")

    # Every distribution benefits (or at least never loses) from the
    # full technique stack...
    for name, (base, best, gain) in table.items():
        assert gain > -0.02, name
    # ...variable-size distributions more than the fixed-size one.
    assert table["gaussian"][2] > table["constant"][2] + 0.05
    assert table["exponential"][2] > table["constant"][2] + 0.05


def test_constant_distribution_needs_no_sorting(benchmark):
    """Fixed sizes: sorting has nothing to reorder, only overhead."""

    def run():
        unsorted = run_config("constant", "aggressive", False)
        sorted_ = run_config("constant", "aggressive", True)
        return unsorted, sorted_

    unsorted, sorted_ = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert abs(sorted_ / unsorted - 1.0) < 0.05


def test_exponential_stresses_unsorted_most(benchmark):
    """Many tiny matrices under a long tail: every unsorted launch is
    configured for the tail (big shared memory, low occupancy) while
    most blocks are small — the worst case for the unsorted driver, so
    sorting gains exceed the uniform case."""

    def gain(name):
        return run_config(name, "classic", True) / run_config(name, "classic", False) - 1.0

    def run():
        return gain("exponential"), gain("uniform")

    exponential, uniform = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert exponential > uniform
