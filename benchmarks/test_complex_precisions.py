"""Complex-precision coverage (paper §IV-A).

"While we show performance tests for single and double precisions
only, the proposed framework supports complex precisions."  We run the
headline workload in all four precisions and check the physically
mandated relations: c tracks s and z tracks d in pipeline terms, with
the 4x flop weight pushing complex Gflop/s above their real partners
on the same data volume, and z constrained hardest by shared memory.
"""


from repro.core.batch import VBatch
from repro.core.driver import PotrfOptions, run_potrf_vbatched
from repro.core.fused import fused_max_feasible_size
from repro.device import Device
from repro.distributions import uniform_sizes

BATCH = 500
NMAX = 256


def run_prec(prec, approach="auto"):
    device = Device(execute_numerics=False)
    b = VBatch.allocate(device, uniform_sizes(BATCH, NMAX, seed=0), prec)
    device.reset_clock()
    return run_potrf_vbatched(device, b, NMAX, PotrfOptions(approach=approach))


def test_all_four_precisions_run(benchmark):
    def run():
        return {p: run_prec(p) for p in "sdcz"}

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    for p, r in results.items():
        print(f"  {p}: {r.gflops:7.1f} Gflop/s via {r.approach}")
    for r in results.values():
        assert r.gflops > 0
    # Weighted flops make complex rates exceed their real partners on
    # the same matrix orders (4x flops, 2-4x the bytes).
    assert results["c"].gflops > results["s"].gflops
    assert results["z"].gflops > results["d"].gflops
    # The fp64 pipelines bound d and z well below s and c.
    assert results["s"].gflops > results["d"].gflops
    assert results["c"].gflops > results["z"].gflops


def test_shared_memory_bounds_tighten_with_element_size(benchmark):
    def run():
        return {p: fused_max_feasible_size(p) for p in "sdcz"}

    bounds = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert bounds["s"] >= bounds["d"] >= bounds["z"]
    assert bounds["c"] == bounds["d"]  # same 8-byte elements


def test_complex_crossover_behaviour(benchmark):
    """The crossover machinery functions in complex precision too."""

    def run():
        small = run_prec("z", approach="auto")
        device = Device(execute_numerics=False)
        b = VBatch.allocate(device, uniform_sizes(300, 900, seed=0), "z")
        device.reset_clock()
        big = run_potrf_vbatched(device, b, 900, PotrfOptions(approach="auto"))
        return small, big

    small, big = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert small.approach == "fused"
    assert big.approach in ("fused", "separated")
    assert big.gflops > 0
