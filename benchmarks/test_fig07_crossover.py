"""Figure 7: crossover between kernel fusion and separation.

Paper claims reproduced: the fused approach wins below a crossover
max-size and becomes infeasible (shared memory) or slower beyond it;
the combined "switch" tracks the better of the two; single precision
crosses later than double (smaller elements keep the fused panel in
shared memory longer).
"""

import numpy as np

from repro.bench.figures import fig7_crossover

NMAX = (128, 192, 256, 384, 512, 768, 1024)
BATCH = 800


def _crossover_index(fused, separated):
    """First x index where the separated approach wins (or None)."""
    for i, (f, s) in enumerate(zip(fused, separated)):
        if np.isnan(f) or s > f:
            return i
    return None


def test_fig7_double_precision(benchmark, figure_runner):
    fig = figure_runner(benchmark, fig7_crossover, "d", nmax_values=NMAX, batch_count=BATCH)
    fused = fig.get("fused").array
    separated = fig.get("separated").array
    switch = fig.get("switch").array

    # Fused wins at the small end, separated at the large end.
    assert fused[0] > separated[0]
    assert separated[-1] > fused[-1] if not np.isnan(fused[-1]) else True
    idx = _crossover_index(fused, separated)
    assert idx is not None and 0 < idx < len(NMAX)

    # The switch tracks the better approach within a small tolerance.
    best = np.fmax(np.nan_to_num(fused), np.nan_to_num(separated))
    assert np.all(switch >= 0.93 * best)


def test_fig7_single_precision(benchmark, figure_runner):
    fig = figure_runner(benchmark, fig7_crossover, "s", nmax_values=NMAX, batch_count=BATCH)
    fused = fig.get("fused").array
    separated = fig.get("separated").array
    assert fused[0] > separated[0]
    switch = fig.get("switch").array
    best = np.fmax(np.nan_to_num(fused), np.nan_to_num(separated))
    assert np.all(switch >= 0.93 * best)


def test_fig7_sp_crosses_later_than_dp(benchmark):
    def both():
        return (
            fig7_crossover("s", nmax_values=NMAX, batch_count=400),
            fig7_crossover("d", nmax_values=NMAX, batch_count=400),
        )

    sp, dp = benchmark.pedantic(both, rounds=1, iterations=1, warmup_rounds=0)
    sp_idx = _crossover_index(sp.get("fused").array, sp.get("separated").array)
    dp_idx = _crossover_index(dp.get("fused").array, dp.get("separated").array)
    assert dp_idx is not None
    assert sp_idx is None or sp_idx >= dp_idx
