"""Batched-GEMM tuning study (the paper's companion report [3]).

The vbatched gemm kernel is "optimized and autotuned based on
techniques from the classic MAGMA gemm routine" (paper §III-E2, citing
the Batched-GEMM tech report).  This bench reproduces that study's
shape: the best tile configuration depends on the problem size — big
square tiles win on large matrices, small tiles on small matrices —
and the tuned pick tracks the per-shape winner.
"""


from repro.autotune import GEMM_TILINGS, Tuner
from repro.device import Device
from repro.flops import gflops
from repro.kernels.gemm import GemmTask, VbatchedGemmKernel

BATCH = 400


def run_shape(m, n, k, tiling, prec="d"):
    device = Device(execute_numerics=False)
    tasks = [GemmTask(m, n, k) for _ in range(BATCH)]
    device.launch(VbatchedGemmKernel(tasks, prec, tiling))
    return gflops(BATCH * 2.0 * m * n * k, device.synchronize())


def test_tile_winner_depends_on_shape(benchmark):
    def run():
        table = {}
        for shape in ((16, 16, 16), (64, 64, 64), (256, 256, 64), (512, 512, 128)):
            per_tile = {}
            for tiling in GEMM_TILINGS:
                try:
                    per_tile[(tiling.blk_m, tiling.blk_n, tiling.blk_k)] = run_shape(*shape, tiling)
                except Exception:
                    continue
            table[shape] = per_tile
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    for shape, per_tile in table.items():
        best = max(per_tile, key=per_tile.get)
        print(f"  {str(shape):>16}: best tile {best} at {per_tile[best]:.1f} Gflop/s")

    small = table[(16, 16, 16)]
    large = table[(512, 512, 128)]
    small_best = max(small, key=small.get)
    large_best = max(large, key=large.get)
    # Small problems prefer small tiles decisively (less wasted work):
    # the 16-tile beats the 64-tile by a wide margin there.
    assert small_best[0] <= 32
    assert small[(16, 16, 16)] > 1.5 * small[(64, 64, 16)]
    # Large problems reverse the ranking: the 16-tile clearly loses and
    # the big register-friendly tiles are all within a whisker of the
    # winner (bandwidth-bound plateau).
    assert large[large_best] > 1.4 * large[(16, 16, 16)]
    assert large[(64, 64, 16)] >= 0.98 * large[large_best]
    # And the large-shape peak dwarfs the small-shape peak.
    assert large[large_best] > 3 * small[small_best]


def test_tuner_tracks_per_shape_winner(benchmark):
    def run():
        tuner = Tuner(batch_count=BATCH)
        picks = {}
        for m in (16, 128, 512):
            r = tuner.tune_gemm_tiling(m, m, max(16, m // 4), "d")
            sweep_best = max(
                (
                    (run_shape(m, m, max(16, m // 4), t), (t.blk_m, t.blk_n, t.blk_k))
                    for t in GEMM_TILINGS
                    if t.shared_mem(8) <= 48 * 1024
                ),
            )
            picks[m] = (r.choice, sweep_best)
        return picks

    picks = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    for m, (choice, (best_g, best_tile)) in picks.items():
        got = run_shape(
            m, m, max(16, m // 4),
            next(t for t in GEMM_TILINGS
                 if (t.blk_m, t.blk_n, t.blk_k) == (choice["blk_m"], choice["blk_n"], choice["blk_k"])),
        )
        # The tuner's pick performs within 2% of the sweep's winner
        # (ties between equal tiles are fine).
        assert got >= 0.98 * best_g, (m, choice, best_tile)
