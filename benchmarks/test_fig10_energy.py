"""Figure 10: energy to solution, CPU vs GPU (paper §IV-G).

Paper claims reproduced: "the GPU implementation is always more
efficient than the CPU ones, in terms of both time and energy to
solution", reaching "a factor up to 3x more energy efficient".
"""

import numpy as np

from repro.bench.figures import fig10_energy
from repro.energy import run_energy_experiment

BUCKETS = (
    (16, 64, 10000),
    (64, 256, 3000),
    (128, 256, 2000),
    (256, 512, 1000),
    (512, 1024, 500),
    (768, 1024, 300),
)


def test_fig10_energy_ratios(benchmark, figure_runner):
    fig = figure_runner(benchmark, fig10_energy, buckets=BUCKETS, precision="d")
    ratios = fig.get("cpu_over_gpu").array

    # Always more energy efficient on the GPU...
    assert np.all(ratios > 1.0)
    # ...by up to a factor approaching 3.
    assert 2.2 < fig.notes["max_energy_ratio"] < 3.6
    # Larger matrices widen the gap (the GPU's throughput advantage
    # grows faster than its extra board power).
    assert ratios[-1] > ratios[0]


def test_fig10_time_and_energy_both_favor_gpu(benchmark):
    comp = benchmark.pedantic(
        lambda: run_energy_experiment(256, 512, 1000, "d"),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert comp.time_ratio > 1.0
    assert comp.energy_ratio > 1.0
    # Average node power sits between idle and the combined caps.
    assert 50 < comp.gpu.average_watts < 300
    assert 50 < comp.cpu.average_watts < 300
